//! Integration tests of the plan-cache lifecycle at the service level:
//! snapshot warm starts across a server restart, and the zipfian loadgen
//! workload (deterministic under a fixed seed).

use arrayflex_serve::client;
use arrayflex_serve::http::{serve, ServerConfig};
use arrayflex_serve::loadgen::{run, LoadgenConfig, ZipfSampler, ZipfWorkload};
use gemm::rng::SplitMix64;
use std::path::PathBuf;

const PLAN_BODY: &str = r#"{"network":"resnet18","rows":64,"cols":64}"#;

/// A temp file that cleans up after itself (and the `.tmp` sibling the
/// atomic snapshot writer uses).
struct TempSnapshot(PathBuf);

impl TempSnapshot {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "arrayflex-serve-{tag}-{}.snapshot",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        Self(path)
    }
}

impl Drop for TempSnapshot {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let _ = std::fs::remove_file(self.0.with_extension("snapshot.tmp"));
    }
}

#[test]
fn a_restarted_server_serves_its_first_repeated_plan_as_a_hit() {
    let snapshot = TempSnapshot::new("warm");
    let config = ServerConfig {
        cache_snapshot: Some(snapshot.0.clone()),
        ..ServerConfig::default()
    };

    let first_run = serve(config.clone()).expect("bind loopback");
    let cold = client::post_json(first_run.addr(), "/v1/plan", PLAN_BODY).unwrap();
    assert_eq!(cold.status, 200);
    assert_eq!(first_run.state().cache().misses(), 1);
    // Graceful shutdown writes the final snapshot.
    first_run.shutdown();
    assert!(snapshot.0.exists(), "shutdown must persist the snapshot");

    let second_run = serve(config).expect("bind loopback again");
    assert_eq!(
        second_run.state().cache().len(),
        1,
        "restart must warm-start from the snapshot"
    );
    let warm = client::post_json(second_run.addr(), "/v1/plan", PLAN_BODY).unwrap();
    assert_eq!(warm.status, 200);
    // Byte-identical to the cold response, and served as a hit: the
    // restarted server never recomputed the plan.
    assert_eq!(warm.body, cold.body);
    assert_eq!(second_run.state().cache().hits(), 1);
    assert_eq!(second_run.state().cache().misses(), 0);
    let metrics = client::get(second_run.addr(), "/metrics").unwrap();
    let text = metrics.text().unwrap().to_owned();
    assert!(
        text.contains("arrayflex_serve_plan_cache_hits_total 1"),
        "{text}"
    );
    assert!(
        text.contains("arrayflex_serve_plan_cache_misses_total 0"),
        "{text}"
    );
    second_run.shutdown();
}

#[test]
fn zipf_sampling_is_deterministic_under_a_fixed_seed() {
    let sampler = ZipfSampler::new(32, 1.1);
    let draw = |seed: u64| -> Vec<usize> {
        let mut rng = SplitMix64::new(seed);
        (0..200).map(|_| sampler.sample(&mut rng)).collect()
    };
    assert_eq!(draw(42), draw(42), "same seed, same sequence");
    assert_ne!(draw(42), draw(43), "different seed, different sequence");
    // Every draw is in range, and the skew shows: the hottest rank
    // dominates the coldest.
    let sequence = draw(42);
    assert!(sequence.iter().all(|&rank| rank < 32));
    let count = |rank: usize| sequence.iter().filter(|&&r| r == rank).count();
    assert!(count(0) > count(31), "rank 0 must be hotter than rank 31");
}

#[test]
fn zipf_probabilities_are_normalized_and_skewed() {
    let sampler = ZipfSampler::new(16, 1.0);
    let total: f64 = (0..16).map(|rank| sampler.probability(rank)).sum();
    assert!((total - 1.0).abs() < 1e-12, "probabilities sum to {total}");
    for rank in 1..16 {
        assert!(
            sampler.probability(rank - 1) > sampler.probability(rank),
            "rank {rank} out of order"
        );
    }
    // s = 0 degenerates to the uniform distribution.
    let uniform = ZipfSampler::new(8, 0.0);
    for rank in 0..8 {
        assert!((uniform.probability(rank) - 0.125).abs() < 1e-12);
    }
}

#[test]
fn zipf_workload_bodies_are_distinct_deterministic_plan_requests() {
    let workload = ZipfWorkload {
        s: 1.0,
        pool: 8,
        seed: 42,
        rows: 32,
        cols: 32,
    };
    let bodies = workload.bodies();
    assert_eq!(bodies.len(), 8);
    assert_eq!(bodies, workload.bodies(), "bodies are a pure function");
    for (index, body) in bodies.iter().enumerate() {
        assert!(body.contains("\"rows\":32"), "body {index}: {body}");
        let value: serde::Value = serde_json::from_str(body).expect("bodies are valid JSON");
        assert!(value.get("network").is_some(), "body {index}");
    }
    for (i, a) in bodies.iter().enumerate() {
        for (j, b) in bodies.iter().enumerate().skip(i + 1) {
            assert_ne!(a, b, "bodies {i} and {j} collide");
        }
    }
}

#[test]
fn zipfian_load_hits_the_cache_and_reports_counters() {
    let handle = serve(ServerConfig::default()).expect("bind loopback");
    let mut config = LoadgenConfig::plan_workload(handle.addr(), 120, 4);
    config.zipf = Some(ZipfWorkload {
        s: 1.0,
        pool: 8,
        seed: 42,
        rows: 32,
        cols: 32,
    });
    let report = run(&config);
    assert_eq!(report.errors, 0, "zipf load must be all-200");
    let cache = handle.state().cache();
    // Every request was exactly one tallied lookup — or coalesced onto an
    // identical in-flight one — and a pool of 8 keys under 120 requests
    // guarantees repeats, i.e. hits.
    let coalesced = handle.state().metrics().coalesced("/v1/plan");
    assert_eq!(cache.hits() + cache.misses() + coalesced, 120);
    assert!(cache.hits() > 0, "skewed keys must repeat");
    assert!(cache.len() <= 8, "at most one entry per pool rank");
    handle.shutdown();
}
