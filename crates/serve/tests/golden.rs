//! Golden-file test: the canonical `/v1/plan` response is committed to the
//! repository and must never drift.
//!
//! The CI smoke test curls a live server with the same request
//! (`scripts/serve_smoke.sh`) and compares against the same file, so the
//! golden pins the over-the-wire contract: the exact bytes of planning
//! ResNet-34 on a 128x128 array with the paper's default calibration.
//!
//! Regenerate intentionally with:
//! `BLESS_GOLDEN=1 cargo test -p arrayflex-serve --test golden`

use arrayflex_serve::client;
use arrayflex_serve::http::{serve, ServerConfig};
use std::path::PathBuf;

/// The request body `scripts/serve_smoke.sh` sends (keep in sync).
const GOLDEN_REQUEST: &str = r#"{"network":"resnet34","rows":128,"cols":128}"#;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/plan_resnet34_128x128.json")
}

#[test]
fn plan_response_matches_the_committed_golden_file() {
    let handle = serve(ServerConfig::default()).expect("bind loopback");
    let response = client::post_json(handle.addr(), "/v1/plan", GOLDEN_REQUEST).unwrap();
    handle.shutdown();
    assert_eq!(response.status, 200);

    let path = golden_path();
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::write(&path, &response.body).expect("write golden file");
        return;
    }
    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with BLESS_GOLDEN=1",
            path.display()
        )
    });
    assert!(
        response.body == golden,
        "/v1/plan response drifted from {} — if the change is intentional, \
         regenerate with BLESS_GOLDEN=1 and commit the diff",
        path.display()
    );
}
