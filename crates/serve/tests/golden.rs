//! Golden-file tests: canonical `/v1/plan` and `/v1/sweep` responses are
//! committed to the repository and must never drift.
//!
//! The CI smoke test curls a live server with the same plan request
//! (`scripts/serve_smoke.sh`) and compares against the same file, so the
//! goldens pin the over-the-wire contract: the exact bytes of planning
//! ResNet-34 on a 128x128 array with the paper's default calibration, and
//! of sweeping one (network x size) pair across both array dataflows.
//!
//! Regenerate intentionally with:
//! `BLESS_GOLDEN=1 cargo test -p arrayflex-serve --test golden`

use arrayflex::sa_sim::Dataflow;
use arrayflex_serve::api::equivalent_sweep;
use arrayflex_serve::client;
use arrayflex_serve::http::{serve, ServerConfig};
use cnn::DepthwiseMapping;
use std::path::PathBuf;

/// The request body `scripts/serve_smoke.sh` sends (keep in sync).
const GOLDEN_REQUEST: &str = r#"{"network":"resnet34","rows":128,"cols":128}"#;

/// One (network x size) pair swept across both dataflows.
const GOLDEN_SWEEP_REQUEST: &str = r#"{"array_sizes":[64],"networks":["mobilenet_v1"],"dataflows":["weight_stationary","output_stationary"]}"#;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/golden/{name}"))
}

fn assert_matches_golden(name: &str, body: &[u8]) {
    let path = golden_path(name);
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::write(&path, body).expect("write golden file");
        return;
    }
    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with BLESS_GOLDEN=1",
            path.display()
        )
    });
    assert!(
        body == golden,
        "response drifted from {} — if the change is intentional, \
         regenerate with BLESS_GOLDEN=1 and commit the diff",
        path.display()
    );
}

#[test]
fn plan_response_matches_the_committed_golden_file() {
    let handle = serve(ServerConfig::default()).expect("bind loopback");
    let response = client::post_json(handle.addr(), "/v1/plan", GOLDEN_REQUEST).unwrap();
    handle.shutdown();
    assert_eq!(response.status, 200);
    assert_matches_golden("plan_resnet34_128x128.json", &response.body);
}

#[test]
fn sweep_response_matches_the_committed_golden_file_and_the_library() {
    let handle = serve(ServerConfig::default()).expect("bind loopback");
    let response = client::post_json(handle.addr(), "/v1/sweep", GOLDEN_SWEEP_REQUEST).unwrap();
    handle.shutdown();
    assert_eq!(response.status, 200);

    // Byte-identical to the direct library sweep of the same grid — the
    // same contract the `/v1/plan` golden pins for planning.
    let direct = equivalent_sweep(
        &[64],
        &[Dataflow::WeightStationary, Dataflow::OutputStationary],
        DepthwiseMapping::default(),
    )
    .run(&[cnn::models::mobilenet_v1()])
    .unwrap();
    assert_eq!(
        response.body,
        serde_json::to_string(&direct).unwrap().into_bytes()
    );

    assert_matches_golden("sweep_mobilenet_64_dataflows.json", &response.body);
}
