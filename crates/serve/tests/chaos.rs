//! Chaos-invariant integration tests: seeded fault schedules through the
//! real event loop, overload shedding, request deadlines, panic isolation,
//! accept-error backoff and corrupt-snapshot warm starts.
//!
//! The invariant under test everywhere: for any seeded fault schedule the
//! server never panics, never deadlocks (shutdown always completes), and
//! every 200 it returns is byte-identical to the fault-free body.

use arrayflex_serve::api;
use arrayflex_serve::client;
use arrayflex_serve::http::{serve, HttpRequest, ServerConfig};
use arrayflex_serve::loadgen::{chaos_run, ChaosConfig};
use arrayflex_serve::{AppState, FaultConfig};
use std::path::PathBuf;
use std::time::Duration;

const PLAN_BODY: &str = r#"{"network":"resnet18","rows":64,"cols":64}"#;

/// The fault-free reference body for one route: what a direct library
/// call (no sockets, no faults, no concurrency) serializes.
fn reference_body(path: &str, body: &str) -> Vec<u8> {
    let state = AppState::new(&ServerConfig::default());
    let response = api::handle(
        &state,
        &HttpRequest {
            method: "POST".to_owned(),
            path: path.to_owned(),
            body: body.as_bytes().to_vec(),
        },
    );
    assert_eq!(response.status, 200, "reference request must be valid");
    response.body
}

/// Decodes a structured error body (`{"error":{"code":N,"message":".."}}`)
/// into its code and message, asserting the shape along the way.
fn error_fields(body: &[u8]) -> (i64, String) {
    let text = std::str::from_utf8(body).expect("error body is UTF-8");
    let value: serde::Value = serde_json::from_str(text).expect("error body is JSON");
    let error = value.get("error").expect("body has an `error` object");
    let code = match error.get("code") {
        Some(serde::Value::Int(code)) => *code,
        other => panic!("error.code is {other:?}"),
    };
    let message = match error.get("message") {
        Some(serde::Value::Str(message)) => message.clone(),
        other => panic!("error.message is {other:?}"),
    };
    (code, message)
}

/// A fault config that only fails accepts — stream and poll I/O stay
/// clean so the test isolates the accept-backoff path.
fn accept_only_faults(seed: u64, burst: u32) -> FaultConfig {
    FaultConfig {
        seed,
        read_eintr: 0,
        read_wouldblock: 0,
        read_short: 0,
        read_reset: 0,
        write_eintr: 0,
        write_wouldblock: 0,
        write_short: 0,
        write_reset: 0,
        poll_eintr: 0,
        spurious_wakeup: 0,
        accept_fail_burst: burst,
    }
}

#[test]
fn seeded_fault_schedules_never_panic_and_every_200_is_byte_identical() {
    // Three distinct schedules; each drives EINTR, short reads/writes,
    // WouldBlock, resets and spurious wakeups through the event loop in a
    // different deterministic order, alongside misbehaving clients
    // (slowloris drips, aborted pipelines, mid-body hangups).
    for seed in [20230418_u64, 7, 424242] {
        let handle = serve(ServerConfig {
            threads: 2,
            queue_limit: 4,
            faults: Some(FaultConfig::with_seed(seed)),
            ..ServerConfig::default()
        })
        .expect("bind loopback");
        let report = chaos_run(&ChaosConfig {
            addr: handle.addr(),
            seed,
            requests: 60,
            clients: 3,
        });
        assert!(
            report.passed(),
            "seed {seed} violated the chaos invariant: {report:?}"
        );
        assert_eq!(
            report.mismatches, 0,
            "seed {seed}: every 200 must be byte-identical to the fault-free body"
        );
        assert!(report.ok > 0, "seed {seed}: no verified 200s: {report:?}");
        assert_eq!(
            handle.state().metrics().panics(),
            0,
            "seed {seed}: a worker or loop handler panicked"
        );
        // Shutdown completing is the no-deadlock half of the invariant.
        handle.shutdown();
    }
}

#[test]
fn vanished_job_submitters_leave_a_drainable_server() {
    // The vanishing-tenant chaos arm submits async jobs and hangs up —
    // sometimes without reading the 202. Jobs are detached from their
    // submitting connection, so the server must run (or shed) every one
    // and still drain cleanly at shutdown.
    let handle = serve(ServerConfig {
        threads: 2,
        queue_limit: 4,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let state = std::sync::Arc::clone(handle.state());
    let report = chaos_run(&ChaosConfig {
        addr: handle.addr(),
        seed: 20230418,
        requests: 120,
        clients: 3,
    });
    assert!(report.passed(), "chaos invariant violated: {report:?}");
    assert!(
        state.metrics().jobs_submitted() > 0,
        "the vanishing-tenant arm never reached the server: {report:?}"
    );
    assert_eq!(state.metrics().panics(), 0);
    // Shutdown joining every orphaned job runner is the drain half of
    // the invariant; afterwards each submitted job has settled.
    handle.shutdown();
    let settled = state.metrics().jobs_completed()
        + state.metrics().jobs_cancelled()
        + state.metrics().jobs_failed()
        + state.metrics().cancelled("shutdown");
    assert_eq!(
        settled,
        state.metrics().jobs_submitted(),
        "every submitted job must settle by completion, cancellation, or shutdown"
    );
    assert_eq!(state.metrics().jobs_failed(), 0, "no chaos job may fail");
}

#[test]
fn overload_sheds_with_a_structured_503_and_retry_after() {
    // One worker, a one-deep queue: concurrent distinct simulate requests
    // (distinct so singleflight cannot coalesce them) must overflow it.
    let handle = serve(ServerConfig {
        threads: 1,
        queue_limit: 1,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = handle.addr();
    let bodies: Vec<String> = (1..=8)
        .map(|seed| format!(r#"{{"rows":16,"cols":16,"k":2,"t":8,"n":48,"m":24,"seed":{seed}}}"#))
        .collect();
    let responses: Vec<_> = std::thread::scope(|scope| {
        // Spawn-all-then-join: collecting first is what makes the
        // requests concurrent.
        #[allow(clippy::needless_collect)]
        let handles: Vec<_> = bodies
            .iter()
            .map(|body| {
                scope.spawn(move || {
                    client::post_json(addr, "/v1/simulate", body).expect("transport stays clean")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut sheds = 0;
    for (body, response) in bodies.iter().zip(&responses) {
        match response.status {
            200 => assert_eq!(
                response.body,
                reference_body("/v1/simulate", body),
                "admitted responses must stay byte-identical under load"
            ),
            503 => {
                sheds += 1;
                assert_eq!(
                    response.retry_after,
                    Some(1),
                    "a shed 503 must carry Retry-After"
                );
                let (code, _) = error_fields(&response.body);
                assert_eq!(code, 503);
            }
            other => panic!("unexpected status {other}"),
        }
    }
    assert!(sheds > 0, "8 concurrent jobs against a 1-deep queue must shed");
    assert!(responses.iter().any(|r| r.status == 200), "some work is admitted");
    assert_eq!(handle.state().metrics().total_sheds(), sheds);

    // The shed counter is visible per route in /metrics.
    let metrics = client::get(addr, "/metrics").unwrap();
    let text = metrics.text().unwrap().to_owned();
    assert!(
        text.contains(r#"arrayflex_serve_shed_total{route="/v1/simulate"}"#),
        "{text}"
    );
    handle.shutdown();
}

#[test]
fn expired_deadlines_are_answered_without_computing() {
    // A zero deadline expires every queued job before its handler runs:
    // the worker answers 503 + Retry-After and never computes.
    let handle = serve(ServerConfig {
        threads: 1,
        request_deadline: Some(Duration::ZERO),
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let response = client::post_json(handle.addr(), "/v1/plan", PLAN_BODY).unwrap();
    assert_eq!(response.status, 503);
    assert_eq!(response.retry_after, Some(1));
    let (code, message) = error_fields(&response.body);
    assert_eq!(code, 503);
    assert!(message.contains("deadline"), "body says why: {message}");
    assert!(handle.state().metrics().deadline_expired() >= 1);
    assert_eq!(
        handle.state().cache().misses(),
        0,
        "expired work must not reach the planner"
    );
    handle.shutdown();
}

#[test]
fn a_panicking_handler_is_isolated_to_a_structured_500() {
    let handle = serve(ServerConfig {
        threads: 1,
        panic_route: true,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let poisoned = client::post_json(handle.addr(), "/__test/panic", "{}").unwrap();
    assert_eq!(poisoned.status, 500);
    let (code, _) = error_fields(&poisoned.body);
    assert_eq!(code, 500);
    assert!(handle.state().metrics().panics() >= 1);

    // The single worker survived the panic: the next request computes.
    let after = client::post_json(handle.addr(), "/v1/plan", PLAN_BODY).unwrap();
    assert_eq!(after.status, 200);
    assert_eq!(after.body, reference_body("/v1/plan", PLAN_BODY));
    handle.shutdown();
}

#[test]
fn accept_errors_back_off_instead_of_spinning() {
    // The first three accepts fail with EMFILE (raw os error 24). The
    // loop must deregister + back off rather than spin, then resume and
    // drain the backlog: clients connected during the burst still get
    // answers (the kernel holds their connections in the listen queue).
    let handle = serve(ServerConfig {
        threads: 1,
        faults: Some(accept_only_faults(99, 3)),
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    for attempt in 0..4 {
        let response = client::get(handle.addr(), "/healthz").unwrap();
        assert_eq!(response.status, 200, "attempt {attempt}");
    }
    assert!(
        handle.state().metrics().accept_backoffs() >= 1,
        "the EMFILE burst must trigger at least one backoff"
    );
    handle.shutdown();
}

#[test]
fn a_corrupt_snapshot_warm_start_is_rejected_all_or_nothing() {
    // Self-cleaning temp path (no tempfile crate in this environment).
    struct TempSnapshot(PathBuf);
    impl Drop for TempSnapshot {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }
    let snapshot = TempSnapshot(std::env::temp_dir().join(format!(
        "arrayflex-serve-corrupt-{}.snapshot",
        std::process::id()
    )));
    // Valid magic, then garbage: the plausible-looking corruption case.
    std::fs::write(&snapshot.0, b"AFPC\x01\x00\x00\x00garbage").unwrap();

    let handle = serve(ServerConfig {
        cache_snapshot: Some(snapshot.0.clone()),
        ..ServerConfig::default()
    })
    .expect("a corrupt snapshot must not prevent startup");
    assert_eq!(
        handle.state().metrics().snapshot_rejected(),
        1,
        "the rejection must be observable"
    );
    assert_eq!(
        handle.state().cache().len(),
        0,
        "warm start is all-or-nothing: nothing partially loaded"
    );
    // The cold server still works, and /metrics exports the counter.
    let response = client::post_json(handle.addr(), "/v1/plan", PLAN_BODY).unwrap();
    assert_eq!(response.status, 200);
    let metrics = client::get(handle.addr(), "/metrics").unwrap();
    let text = metrics.text().unwrap().to_owned();
    assert!(
        text.contains("arrayflex_serve_snapshot_rejected_total 1"),
        "{text}"
    );
    handle.shutdown();
}
