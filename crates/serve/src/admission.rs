//! Batch admission in front of the request handlers.
//!
//! Two amortization mechanisms sit between the event loops and the
//! handler worker pool — the serving-layer analogue of the paper's thesis
//! that *utilization*, not peak compute, decides delivered throughput:
//!
//! * **Singleflight**: concurrent identical requests (same path, same
//!   body) to a coalescable route (`/v1/plan`, `/v1/sweep`,
//!   `/v1/simulate`) collapse onto one in-flight computation. The first
//!   request becomes the *leader* and computes; later identical requests
//!   park as *waiters* and receive the leader's response — the body is an
//!   [`Arc`], so fan-out copies nothing. Because every handler is a pure
//!   function of the request body over deterministic state, the coalesced
//!   response is byte-identical to what each waiter would have computed
//!   itself (asserted by the golden tests).
//! * **Gather window**: when [`crate::http::ServerConfig::gather_window`]
//!   is non-zero, the first `/v1/simulate` request of an array
//!   configuration waits up to that long for same-configuration requests
//!   (same `rows`/`cols`/`k`/`dataflow`, any operands), then the whole
//!   group runs as one batch through `ParallelExecutor` sharing the
//!   pooled simulator arrays. Off (zero) by default so sequential callers
//!   never pay the window as latency.
//!
//! Responses travel back to their event loop as [`Completion`]s through
//! the loop's mailbox; request metrics and log lines are recorded here,
//! per original request, with each request's own end-to-end latency.
//!
//! **Cancellation.** Every job carries a per-request [`CancelToken`]
//! armed with the request deadline; the event loop fires it when the
//! client's connection closes. A coalescable computation runs under a
//! separate *compute* token registered with its flight: a disconnecting
//! client only detaches from the flight, and the compute token fires
//! only when the **last** waiting client (leader included) is gone —
//! work with a live audience is never abandoned. The handler observes
//! its token between job items, so an abandoned computation stops within
//! one item and answers a structured 503 (dropped by the slot-generation
//! guard if nobody is left to read it).

use crate::api::{self, AppState, SimRequest};
use crate::conn::ParsedRequest;
use crate::event_loop::{LoopMsg, Mailbox};
use crate::http::{self, HttpRequest, HttpResponse};
use arrayflex::ParallelExecutor;
use arrayflex::sa_sim::Dataflow;
use gemm::CancelToken;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Reason a compute token carries when every waiting client disconnected.
pub(crate) const DISCONNECT_REASON: &str = "every waiting client disconnected";

/// A response shared between a singleflight leader and its waiters.
#[derive(Debug, Clone)]
pub(crate) struct SharedResponse {
    /// Status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// The response body, shared across every coalesced delivery.
    pub body: Arc<Vec<u8>>,
    /// Extra response header lines (CRLF-terminated, e.g. `Retry-After`
    /// on sheds, the stale flag on degraded memo hits); `""` for most
    /// responses.
    pub extra_headers: &'static str,
}

impl From<HttpResponse> for SharedResponse {
    fn from(response: HttpResponse) -> Self {
        Self {
            status: response.status,
            content_type: response.content_type,
            body: Arc::new(response.body),
            extra_headers: "",
        }
    }
}

/// One parsed request travelling from an event loop to the worker pool.
#[derive(Debug)]
pub(crate) struct Job {
    /// Index of the event loop that owns the connection.
    pub loop_id: usize,
    /// The connection's poller token on that loop.
    pub token: usize,
    /// The connection slot's generation when the request was parsed; a
    /// completion whose generation no longer matches is dropped (the
    /// connection died and the slot may have been reused).
    pub generation: u64,
    /// Position of this request in the connection's pipeline; responses
    /// are written strictly in `seq` order.
    pub seq: u64,
    /// The parsed request.
    pub request: ParsedRequest,
    /// When the request finished parsing (latency is measured from here).
    pub started: Instant,
    /// The request's cancellation token: armed with the request deadline
    /// at dispatch, fired by the event loop if the connection closes
    /// while the request is queued or computing.
    pub cancel: CancelToken,
}

/// One finished response travelling back to its event loop.
#[derive(Debug)]
pub(crate) struct Completion {
    /// The connection's poller token.
    pub token: usize,
    /// Slot generation the response belongs to.
    pub generation: u64,
    /// Pipeline position the response answers.
    pub seq: u64,
    /// The response.
    pub response: SharedResponse,
    /// Whether the connection must close after this response.
    pub close_after: bool,
}

/// The delivery address and accounting context of one parked request.
#[derive(Debug)]
struct Waiter {
    loop_id: usize,
    token: usize,
    generation: u64,
    seq: u64,
    close_after: bool,
    route: &'static str,
    started: Instant,
    /// `true` for requests that coalesced onto another computation (the
    /// leader itself is delivered with `coalesced: false`).
    coalesced: bool,
}

/// Identity of one in-flight coalescable computation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct FlightKey {
    path: String,
    body: Vec<u8>,
}

/// Array geometry a `/v1/simulate` request runs on: `(rows, cols, k,
/// dataflow)`. Requests sharing one can share a pooled-array batch.
type BatchKey = (u32, u32, u32, Dataflow);

/// One gather-bucket member: the flight it leads, the decoded request
/// the batch leader will run, and the flight's compute token.
type GatherEntry = (FlightKey, Waiter, SimRequest, CancelToken);

/// One in-flight coalescable computation: its audience and the token its
/// computation observes.
#[derive(Debug)]
struct Flight {
    /// Waiters parked behind the leader.
    waiters: Vec<Waiter>,
    /// Token the computation runs under; fired (with
    /// [`DISCONNECT_REASON`]) once the last waiting client disconnects.
    compute: CancelToken,
    /// The leader's delivery address: `(loop_id, token, generation)`.
    leader: (usize, usize, u64),
    /// Whether the leader's own connection has closed.
    leader_gone: bool,
}

/// The singleflight table and simulate gather buckets.
#[derive(Debug)]
pub(crate) struct Admission {
    /// In-flight computations: key -> the flight behind the leader.
    flights: Mutex<HashMap<FlightKey, Flight>>,
    /// Open gather buckets: batch key -> flights waiting for the batch
    /// leader to run them.
    gather: Mutex<HashMap<BatchKey, Vec<GatherEntry>>>,
    window: Duration,
}

/// Outcome of entering the singleflight table.
enum Entered {
    /// This request leads the computation; the waiter is handed back.
    Lead(Waiter),
    /// An identical computation is already in flight; the waiter was
    /// parked behind its leader.
    Coalesced,
}

impl Admission {
    pub(crate) fn new(window: Duration) -> Self {
        Self {
            flights: Mutex::new(HashMap::new()),
            gather: Mutex::new(HashMap::new()),
            window,
        }
    }

    fn enter(&self, key: FlightKey, waiter: Waiter, compute: &CancelToken) -> Entered {
        // All four table locks are poison-tolerant: handlers run under
        // `catch_unwind`, and a caught panic must not convert every later
        // request into a second panic (the tables' invariants are
        // per-entry and survive an unwound leader — `settle` still runs).
        let mut flights = self.flights.lock().unwrap_or_else(|e| e.into_inner());
        match flights.entry(key) {
            Entry::Occupied(mut entry) => {
                entry.get_mut().waiters.push(waiter);
                Entered::Coalesced
            }
            Entry::Vacant(entry) => {
                entry.insert(Flight {
                    waiters: Vec::new(),
                    compute: compute.clone(),
                    leader: (waiter.loop_id, waiter.token, waiter.generation),
                    leader_gone: false,
                });
                Entered::Lead(waiter)
            }
        }
    }

    /// Closes one flight, returning the waiters its leader must deliver
    /// the shared response to.
    fn complete(&self, key: &FlightKey) -> Vec<Waiter> {
        self.flights
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(key)
            .map(|flight| flight.waiters)
            .unwrap_or_default()
    }

    /// Detaches one closed connection from every in-flight computation.
    /// Called by the owning event loop when a connection dies with
    /// requests outstanding. A flight whose last waiting client (leader
    /// included) is gone has its compute token fired: nobody is left to
    /// read the response, so the handler stops at its next job-item
    /// check instead of finishing work it cannot deliver.
    pub(crate) fn disconnected(&self, loop_id: usize, token: usize, generation: u64) {
        let address = (loop_id, token, generation);
        let mut flights = self.flights.lock().unwrap_or_else(|e| e.into_inner());
        for flight in flights.values_mut() {
            if flight.leader == address {
                flight.leader_gone = true;
            }
            flight
                .waiters
                .retain(|w| (w.loop_id, w.token, w.generation) != address);
            if flight.leader_gone
                && flight.waiters.is_empty()
                && !flight.compute.cancel_requested()
            {
                flight.compute.cancel(DISCONNECT_REASON);
            }
        }
    }

    /// Parks one flight into its gather bucket. `true` when this call
    /// opened the bucket (the caller becomes the batch leader and must
    /// sleep the window, then [`Admission::take_batch`]).
    fn join_gather(&self, batch_key: BatchKey, item: GatherEntry) -> bool {
        let mut gather = self.gather.lock().unwrap_or_else(|e| e.into_inner());
        match gather.entry(batch_key) {
            Entry::Occupied(mut entry) => {
                entry.get_mut().push(item);
                false
            }
            Entry::Vacant(entry) => {
                entry.insert(vec![item]);
                true
            }
        }
    }

    /// Takes the gathered batch (leader's own flight included).
    fn take_batch(&self, batch_key: BatchKey) -> Vec<GatherEntry> {
        self.gather
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&batch_key)
            .unwrap_or_default()
    }
}

/// Routes whose POSTs may coalesce (pure functions of the request body).
fn coalescable(method: &str, route: &str) -> bool {
    method == "POST" && matches!(route, "/v1/plan" | "/v1/sweep" | "/v1/simulate")
}

fn waiter_of(job: &Job, route: &'static str) -> Waiter {
    Waiter {
        loop_id: job.loop_id,
        token: job.token,
        generation: job.generation,
        seq: job.seq,
        close_after: job.request.close_after,
        route,
        started: job.started,
        coalesced: false,
    }
}

/// Runs one job end to end: admission, computation, delivery. Called by
/// the handler worker threads.
pub(crate) fn handle_job(
    state: &AppState,
    admission: &Admission,
    sinks: &[Arc<Mailbox>],
    job: Job,
) {
    let route = api::route_label(&job.request.path);
    let waiter = waiter_of(&job, route);

    // The connection died while this job sat in the queue: nobody can
    // read the response, so don't spend a worker computing it. (A
    // deadline-expired token without a disconnect falls through to the
    // deadline branch below for its 503 accounting.)
    if job.cancel.cancel_requested() {
        state.metrics().note_cancelled("disconnect");
        return;
    }

    // Per-request deadline: work that queued past its deadline is dead on
    // arrival — the client has given up or retried — so answer 503 now
    // instead of burning a worker on a response nobody reads. Measured
    // from parse completion, so queue time counts.
    if let Some(deadline) = state.request_deadline() {
        if job.started.elapsed() >= deadline {
            state.metrics().note_deadline_expired();
            let mut response = SharedResponse::from(HttpResponse::error(
                503,
                "request deadline expired before processing",
            ));
            response.extra_headers = http::RETRY_AFTER_HEADER;
            deliver(state, sinks, waiter, &response, api::RequestTrace::default());
            return;
        }
    }

    let tenant = job.request.tenant;
    let request = HttpRequest {
        method: job.request.method,
        path: job.request.path,
        body: job.request.body,
    };

    if !coalescable(&request.method, route) {
        let (response, trace) = guarded_handle(state, &request, &job.cancel, tenant.as_deref());
        let response = finish(state, &job.cancel, response);
        deliver(state, sinks, waiter, &response, trace);
        return;
    }

    // The computation's own token, distinct from the leader's
    // per-connection token: a leader disconnecting must not abandon work
    // other coalesced clients still wait for, so only
    // `Admission::disconnected` — observing the whole audience — fires
    // it. The deadline is the leader's; waiters that coalesced later
    // inherit it (conservative: they queued no earlier than the leader
    // plus the coalescing window).
    let compute = CancelToken::with_deadline_opt(
        state.request_deadline().map(|deadline| job.started + deadline),
    );
    let key = FlightKey {
        path: request.path.clone(),
        body: request.body.clone(),
    };
    let leader = match admission.enter(key.clone(), waiter, &compute) {
        // An identical computation is in flight; its leader delivers.
        Entered::Coalesced => return,
        Entered::Lead(waiter) => waiter,
    };

    // Gather window: batch same-configuration simulate requests. Bodies
    // that fail to decode fall through to the plain handler path so error
    // responses stay byte-identical to the unbatched server.
    if route == "/v1/simulate" && !admission.window.is_zero() {
        if let Some(sim) = try_decode_sim(&request.body) {
            if admission.join_gather(sim.batch_key(), (key, leader, sim, compute)) {
                std::thread::sleep(admission.window);
                run_batch(state, admission, sinks, admission.take_batch(sim.batch_key()));
            }
            // Not the batch leader: the leader runs (and delivers) this
            // flight when its window closes.
            return;
        }
    }

    let (response, trace) = guarded_handle(state, &request, &compute, tenant.as_deref());
    let response = finish(state, &compute, response);
    settle(state, admission, sinks, &key, leader, response, trace);
}

/// Runs the handler under `catch_unwind`: a panicking handler must cost
/// exactly one structured 500 — never the worker thread, and never (via
/// singleflight) the waiters parked behind the leader, whose delivery
/// depends on `settle` running after this returns.
fn guarded_handle(
    state: &AppState,
    request: &HttpRequest,
    cancel: &CancelToken,
    tenant: Option<&str>,
) -> (HttpResponse, api::RequestTrace) {
    catch_unwind(AssertUnwindSafe(|| {
        api::handle_request(state, request, cancel, tenant)
    }))
    .unwrap_or_else(|_| {
        state.metrics().note_panic();
        (
            HttpResponse::error(500, "internal error"),
            api::RequestTrace::default(),
        )
    })
}

/// Post-handler accounting shared by every computation path: backoff
/// hints (`Retry-After`) on 429/503, and the cancellation counter when a
/// 503 came from the request's token firing (cause `"disconnect"` when a
/// closed connection fired it, `"deadline"` when the armed deadline
/// passed mid-handler).
fn finish(state: &AppState, token: &CancelToken, response: HttpResponse) -> SharedResponse {
    let mut shared = SharedResponse::from(response);
    if matches!(shared.status, 429 | 503) {
        shared.extra_headers = http::RETRY_AFTER_HEADER;
    }
    if shared.status == 503 && token.is_cancelled() {
        let cause = if token.cancel_requested() {
            "disconnect"
        } else {
            "deadline"
        };
        state.metrics().note_cancelled(cause);
    }
    shared
}

/// Decodes a simulate body the way the handler would; `None` routes the
/// request down the plain (unbatched) path.
fn try_decode_sim(body: &[u8]) -> Option<SimRequest> {
    let text = std::str::from_utf8(body).ok()?;
    let value = serde_json::from_str(text).ok()?;
    api::decode_simulate(&value).ok()
}

/// Runs one gathered simulate batch through `ParallelExecutor`, then
/// settles every member flight.
fn run_batch(
    state: &AppState,
    admission: &Admission,
    sinks: &[Arc<Mailbox>],
    batch: Vec<GatherEntry>,
) {
    if batch.is_empty() {
        return;
    }
    state.metrics().note_sim_batch(batch.len() as u64);
    let mut addresses = Vec::with_capacity(batch.len());
    let mut sims = Vec::with_capacity(batch.len());
    for (key, waiter, sim, token) in batch {
        addresses.push((key, waiter));
        sims.push((sim, token));
    }
    let threads = sims
        .len()
        .min(std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get));
    // Same isolation as `guarded_handle`, per batch member: one poisoned
    // simulate body must not sink the other members' responses. Each
    // member runs under its own flight's compute token, so a batch entry
    // whose whole audience disconnected settles as a (dropped) 503
    // without stalling the rest of the batch.
    let responses = ParallelExecutor::new(threads).run(sims, |(sim, token)| {
        catch_unwind(AssertUnwindSafe(|| {
            let response = api::simulate_response(state, sim, &token);
            finish(state, &token, response)
        }))
        .unwrap_or_else(|_| {
            state.metrics().note_panic();
            SharedResponse::from(HttpResponse::error(500, "internal error"))
        })
    });
    for ((key, waiter), response) in addresses.into_iter().zip(responses) {
        settle(
            state,
            admission,
            sinks,
            &key,
            waiter,
            response,
            api::RequestTrace::default(),
        );
    }
}

/// Closes a flight and delivers the shared response to its leader and
/// every coalesced waiter.
fn settle(
    state: &AppState,
    admission: &Admission,
    sinks: &[Arc<Mailbox>],
    key: &FlightKey,
    leader: Waiter,
    response: SharedResponse,
    trace: api::RequestTrace,
) {
    let waiters = admission.complete(key);
    deliver(state, sinks, leader, &response, trace);
    for mut waiter in waiters {
        waiter.coalesced = true;
        // Coalesced requests never consulted the cache themselves.
        deliver(state, sinks, waiter, &response, api::RequestTrace::default());
    }
}

/// Records one request's metrics/log line and mails its completion back
/// to the owning event loop.
fn deliver(
    state: &AppState,
    sinks: &[Arc<Mailbox>],
    waiter: Waiter,
    response: &SharedResponse,
    trace: api::RequestTrace,
) {
    let latency = waiter.started.elapsed();
    state.metrics().observe(waiter.route, response.status, latency);
    if waiter.coalesced {
        state.metrics().note_coalesced(waiter.route);
    }
    if state.log_requests() {
        println!(
            "{}",
            http::log_line(waiter.route, response.status, latency, trace)
        );
    }
    sinks[waiter.loop_id].push(LoopMsg::Complete(Completion {
        token: waiter.token,
        generation: waiter.generation,
        seq: waiter.seq,
        response: response.clone(),
        close_after: waiter.close_after,
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn waiter(loop_id: usize, token: usize) -> Waiter {
        Waiter {
            loop_id,
            token,
            generation: 1,
            seq: 0,
            close_after: false,
            route: "/v1/sweep",
            started: Instant::now(),
            coalesced: false,
        }
    }

    fn key() -> FlightKey {
        FlightKey {
            path: "/v1/sweep".to_owned(),
            body: b"{}".to_vec(),
        }
    }

    #[test]
    fn compute_token_fires_only_when_the_last_waiter_disconnects() {
        let admission = Admission::new(Duration::ZERO);
        let compute = CancelToken::new();
        let lead = admission.enter(key(), waiter(0, 7), &compute);
        assert!(matches!(lead, Entered::Lead(_)));
        let coalesced = admission.enter(key(), waiter(0, 9), &CancelToken::new());
        assert!(matches!(coalesced, Entered::Coalesced));

        // The leader disconnects; a coalesced waiter still listens.
        admission.disconnected(0, 7, 1);
        assert!(!compute.is_cancelled(), "cancelled with a live waiter");

        // An unrelated connection closing changes nothing.
        admission.disconnected(0, 99, 1);
        assert!(!compute.is_cancelled());

        // The last waiter disconnects: the computation is abandoned.
        admission.disconnected(0, 9, 1);
        assert!(compute.cancel_requested());
        assert_eq!(compute.reason().as_deref(), Some(DISCONNECT_REASON));

        // The flight still settles normally for the (dropped) delivery.
        assert_eq!(admission.complete(&key()).len(), 0);
    }

    #[test]
    fn a_disconnected_waiter_detaches_without_cancelling() {
        let admission = Admission::new(Duration::ZERO);
        let compute = CancelToken::new();
        assert!(matches!(
            admission.enter(key(), waiter(0, 7), &compute),
            Entered::Lead(_)
        ));
        assert!(matches!(
            admission.enter(key(), waiter(0, 9), &CancelToken::new()),
            Entered::Coalesced
        ));
        // The waiter leaves; the leader still wants the response.
        admission.disconnected(0, 9, 1);
        assert!(!compute.is_cancelled());
        assert_eq!(admission.complete(&key()).len(), 0);
    }

    #[test]
    fn cancelled_503s_carry_retry_after_and_count_by_cause() {
        let config = crate::http::ServerConfig::default();
        let state = AppState::new(&config);
        let token = CancelToken::new();
        token.cancel(DISCONNECT_REASON);
        let shared = finish(
            &state,
            &token,
            HttpResponse::error(503, "run cancelled after 0/4 items"),
        );
        assert_eq!(shared.extra_headers, http::RETRY_AFTER_HEADER);
        assert_eq!(state.metrics().cancelled("disconnect"), 1);
        // A plain 200 through the same path records nothing.
        let ok = finish(&state, &CancelToken::new(), HttpResponse::json(b"{}".to_vec()));
        assert_eq!(ok.extra_headers, "");
        assert_eq!(state.metrics().total_cancelled(), 1);
    }
}
