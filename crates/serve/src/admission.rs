//! Batch admission in front of the request handlers.
//!
//! Two amortization mechanisms sit between the event loops and the
//! handler worker pool — the serving-layer analogue of the paper's thesis
//! that *utilization*, not peak compute, decides delivered throughput:
//!
//! * **Singleflight**: concurrent identical requests (same path, same
//!   body) to a coalescable route (`/v1/plan`, `/v1/sweep`,
//!   `/v1/simulate`) collapse onto one in-flight computation. The first
//!   request becomes the *leader* and computes; later identical requests
//!   park as *waiters* and receive the leader's response — the body is an
//!   [`Arc`], so fan-out copies nothing. Because every handler is a pure
//!   function of the request body over deterministic state, the coalesced
//!   response is byte-identical to what each waiter would have computed
//!   itself (asserted by the golden tests).
//! * **Gather window**: when [`crate::http::ServerConfig::gather_window`]
//!   is non-zero, the first `/v1/simulate` request of an array
//!   configuration waits up to that long for same-configuration requests
//!   (same `rows`/`cols`/`k`/`dataflow`, any operands), then the whole
//!   group runs as one batch through `ParallelExecutor` sharing the
//!   pooled simulator arrays. Off (zero) by default so sequential callers
//!   never pay the window as latency.
//!
//! Responses travel back to their event loop as [`Completion`]s through
//! the loop's mailbox; request metrics and log lines are recorded here,
//! per original request, with each request's own end-to-end latency.

use crate::api::{self, AppState, SimRequest};
use crate::conn::ParsedRequest;
use crate::event_loop::{LoopMsg, Mailbox};
use crate::http::{self, HttpRequest, HttpResponse};
use arrayflex::ParallelExecutor;
use arrayflex::sa_sim::Dataflow;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A response shared between a singleflight leader and its waiters.
#[derive(Debug, Clone)]
pub(crate) struct SharedResponse {
    /// Status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// The response body, shared across every coalesced delivery.
    pub body: Arc<Vec<u8>>,
    /// Extra response header lines (CRLF-terminated, e.g. `Retry-After`
    /// on sheds, the stale flag on degraded memo hits); `""` for most
    /// responses.
    pub extra_headers: &'static str,
}

impl From<HttpResponse> for SharedResponse {
    fn from(response: HttpResponse) -> Self {
        Self {
            status: response.status,
            content_type: response.content_type,
            body: Arc::new(response.body),
            extra_headers: "",
        }
    }
}

/// One parsed request travelling from an event loop to the worker pool.
#[derive(Debug)]
pub(crate) struct Job {
    /// Index of the event loop that owns the connection.
    pub loop_id: usize,
    /// The connection's poller token on that loop.
    pub token: usize,
    /// The connection slot's generation when the request was parsed; a
    /// completion whose generation no longer matches is dropped (the
    /// connection died and the slot may have been reused).
    pub generation: u64,
    /// Position of this request in the connection's pipeline; responses
    /// are written strictly in `seq` order.
    pub seq: u64,
    /// The parsed request.
    pub request: ParsedRequest,
    /// When the request finished parsing (latency is measured from here).
    pub started: Instant,
}

/// One finished response travelling back to its event loop.
#[derive(Debug)]
pub(crate) struct Completion {
    /// The connection's poller token.
    pub token: usize,
    /// Slot generation the response belongs to.
    pub generation: u64,
    /// Pipeline position the response answers.
    pub seq: u64,
    /// The response.
    pub response: SharedResponse,
    /// Whether the connection must close after this response.
    pub close_after: bool,
}

/// The delivery address and accounting context of one parked request.
#[derive(Debug)]
struct Waiter {
    loop_id: usize,
    token: usize,
    generation: u64,
    seq: u64,
    close_after: bool,
    route: &'static str,
    started: Instant,
    /// `true` for requests that coalesced onto another computation (the
    /// leader itself is delivered with `coalesced: false`).
    coalesced: bool,
}

/// Identity of one in-flight coalescable computation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct FlightKey {
    path: String,
    body: Vec<u8>,
}

/// Array geometry a `/v1/simulate` request runs on: `(rows, cols, k,
/// dataflow)`. Requests sharing one can share a pooled-array batch.
type BatchKey = (u32, u32, u32, Dataflow);

/// One gather-bucket member: the flight it leads plus the decoded
/// request the batch leader will run.
type GatherEntry = (FlightKey, Waiter, SimRequest);

/// The singleflight table and simulate gather buckets.
#[derive(Debug)]
pub(crate) struct Admission {
    /// In-flight computations: key -> waiters parked behind the leader.
    flights: Mutex<HashMap<FlightKey, Vec<Waiter>>>,
    /// Open gather buckets: batch key -> flights waiting for the batch
    /// leader to run them.
    gather: Mutex<HashMap<BatchKey, Vec<GatherEntry>>>,
    window: Duration,
}

/// Outcome of entering the singleflight table.
enum Entered {
    /// This request leads the computation; the waiter is handed back.
    Lead(Waiter),
    /// An identical computation is already in flight; the waiter was
    /// parked behind its leader.
    Coalesced,
}

impl Admission {
    pub(crate) fn new(window: Duration) -> Self {
        Self {
            flights: Mutex::new(HashMap::new()),
            gather: Mutex::new(HashMap::new()),
            window,
        }
    }

    fn enter(&self, key: FlightKey, waiter: Waiter) -> Entered {
        // All four table locks are poison-tolerant: handlers run under
        // `catch_unwind`, and a caught panic must not convert every later
        // request into a second panic (the tables' invariants are
        // per-entry and survive an unwound leader — `settle` still runs).
        let mut flights = self.flights.lock().unwrap_or_else(|e| e.into_inner());
        match flights.entry(key) {
            Entry::Occupied(mut entry) => {
                entry.get_mut().push(waiter);
                Entered::Coalesced
            }
            Entry::Vacant(entry) => {
                entry.insert(Vec::new());
                Entered::Lead(waiter)
            }
        }
    }

    /// Closes one flight, returning the waiters its leader must deliver
    /// the shared response to.
    fn complete(&self, key: &FlightKey) -> Vec<Waiter> {
        self.flights
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(key)
            .unwrap_or_default()
    }

    /// Parks one flight into its gather bucket. `true` when this call
    /// opened the bucket (the caller becomes the batch leader and must
    /// sleep the window, then [`Admission::take_batch`]).
    fn join_gather(&self, batch_key: BatchKey, item: GatherEntry) -> bool {
        let mut gather = self.gather.lock().unwrap_or_else(|e| e.into_inner());
        match gather.entry(batch_key) {
            Entry::Occupied(mut entry) => {
                entry.get_mut().push(item);
                false
            }
            Entry::Vacant(entry) => {
                entry.insert(vec![item]);
                true
            }
        }
    }

    /// Takes the gathered batch (leader's own flight included).
    fn take_batch(&self, batch_key: BatchKey) -> Vec<GatherEntry> {
        self.gather
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&batch_key)
            .unwrap_or_default()
    }
}

/// Routes whose POSTs may coalesce (pure functions of the request body).
fn coalescable(method: &str, route: &str) -> bool {
    method == "POST" && matches!(route, "/v1/plan" | "/v1/sweep" | "/v1/simulate")
}

fn waiter_of(job: &Job, route: &'static str) -> Waiter {
    Waiter {
        loop_id: job.loop_id,
        token: job.token,
        generation: job.generation,
        seq: job.seq,
        close_after: job.request.close_after,
        route,
        started: job.started,
        coalesced: false,
    }
}

/// Runs one job end to end: admission, computation, delivery. Called by
/// the handler worker threads.
pub(crate) fn handle_job(
    state: &AppState,
    admission: &Admission,
    sinks: &[Arc<Mailbox>],
    job: Job,
) {
    let route = api::route_label(&job.request.path);
    let waiter = waiter_of(&job, route);

    // Per-request deadline: work that queued past its deadline is dead on
    // arrival — the client has given up or retried — so answer 503 now
    // instead of burning a worker on a response nobody reads. Measured
    // from parse completion, so queue time counts.
    if let Some(deadline) = state.request_deadline() {
        if job.started.elapsed() >= deadline {
            state.metrics().note_deadline_expired();
            let mut response = SharedResponse::from(HttpResponse::error(
                503,
                "request deadline expired before processing",
            ));
            response.extra_headers = http::RETRY_AFTER_HEADER;
            deliver(state, sinks, waiter, &response, api::RequestTrace::default());
            return;
        }
    }

    let request = HttpRequest {
        method: job.request.method,
        path: job.request.path,
        body: job.request.body,
    };

    if !coalescable(&request.method, route) {
        let (response, trace) = guarded_handle(state, &request);
        deliver(state, sinks, waiter, &response.into(), trace);
        return;
    }

    let key = FlightKey {
        path: request.path.clone(),
        body: request.body.clone(),
    };
    let leader = match admission.enter(key.clone(), waiter) {
        // An identical computation is in flight; its leader delivers.
        Entered::Coalesced => return,
        Entered::Lead(waiter) => waiter,
    };

    // Gather window: batch same-configuration simulate requests. Bodies
    // that fail to decode fall through to the plain handler path so error
    // responses stay byte-identical to the unbatched server.
    if route == "/v1/simulate" && !admission.window.is_zero() {
        if let Some(sim) = try_decode_sim(&request.body) {
            if admission.join_gather(sim.batch_key(), (key, leader, sim)) {
                std::thread::sleep(admission.window);
                run_batch(state, admission, sinks, admission.take_batch(sim.batch_key()));
            }
            // Not the batch leader: the leader runs (and delivers) this
            // flight when its window closes.
            return;
        }
    }

    let (response, trace) = guarded_handle(state, &request);
    settle(state, admission, sinks, &key, leader, response.into(), trace);
}

/// Runs the handler under `catch_unwind`: a panicking handler must cost
/// exactly one structured 500 — never the worker thread, and never (via
/// singleflight) the waiters parked behind the leader, whose delivery
/// depends on `settle` running after this returns.
fn guarded_handle(
    state: &AppState,
    request: &HttpRequest,
) -> (HttpResponse, api::RequestTrace) {
    catch_unwind(AssertUnwindSafe(|| api::handle_traced(state, request))).unwrap_or_else(|_| {
        state.metrics().note_panic();
        (
            HttpResponse::error(500, "internal error"),
            api::RequestTrace::default(),
        )
    })
}

/// Decodes a simulate body the way the handler would; `None` routes the
/// request down the plain (unbatched) path.
fn try_decode_sim(body: &[u8]) -> Option<SimRequest> {
    let text = std::str::from_utf8(body).ok()?;
    let value = serde_json::from_str(text).ok()?;
    api::decode_simulate(&value).ok()
}

/// Runs one gathered simulate batch through `ParallelExecutor`, then
/// settles every member flight.
fn run_batch(
    state: &AppState,
    admission: &Admission,
    sinks: &[Arc<Mailbox>],
    batch: Vec<(FlightKey, Waiter, SimRequest)>,
) {
    if batch.is_empty() {
        return;
    }
    state.metrics().note_sim_batch(batch.len() as u64);
    let mut addresses = Vec::with_capacity(batch.len());
    let mut sims = Vec::with_capacity(batch.len());
    for (key, waiter, sim) in batch {
        addresses.push((key, waiter));
        sims.push(sim);
    }
    let threads = sims
        .len()
        .min(std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get));
    // Same isolation as `guarded_handle`, per batch member: one poisoned
    // simulate body must not sink the other members' responses.
    let responses = ParallelExecutor::new(threads).run(sims, |sim| {
        catch_unwind(AssertUnwindSafe(|| api::simulate_response(state, sim))).unwrap_or_else(
            |_| {
                state.metrics().note_panic();
                HttpResponse::error(500, "internal error")
            },
        )
    });
    for ((key, waiter), response) in addresses.into_iter().zip(responses) {
        settle(
            state,
            admission,
            sinks,
            &key,
            waiter,
            response.into(),
            api::RequestTrace::default(),
        );
    }
}

/// Closes a flight and delivers the shared response to its leader and
/// every coalesced waiter.
fn settle(
    state: &AppState,
    admission: &Admission,
    sinks: &[Arc<Mailbox>],
    key: &FlightKey,
    leader: Waiter,
    response: SharedResponse,
    trace: api::RequestTrace,
) {
    let waiters = admission.complete(key);
    deliver(state, sinks, leader, &response, trace);
    for mut waiter in waiters {
        waiter.coalesced = true;
        // Coalesced requests never consulted the cache themselves.
        deliver(state, sinks, waiter, &response, api::RequestTrace::default());
    }
}

/// Records one request's metrics/log line and mails its completion back
/// to the owning event loop.
fn deliver(
    state: &AppState,
    sinks: &[Arc<Mailbox>],
    waiter: Waiter,
    response: &SharedResponse,
    trace: api::RequestTrace,
) {
    let latency = waiter.started.elapsed();
    state.metrics().observe(waiter.route, response.status, latency);
    if waiter.coalesced {
        state.metrics().note_coalesced(waiter.route);
    }
    if state.log_requests() {
        println!(
            "{}",
            http::log_line(waiter.route, response.status, latency, trace)
        );
    }
    sinks[waiter.loop_id].push(LoopMsg::Complete(Completion {
        token: waiter.token,
        generation: waiter.generation,
        seq: waiter.seq,
        response: response.clone(),
        close_after: waiter.close_after,
    }));
}
