//! Cancellable, checkpointed long-running jobs and per-tenant admission.
//!
//! `POST /v1/jobs` accepts a sweep request and runs it **asynchronously**:
//! the submission returns a job id immediately (202), the sweep's points
//! execute one at a time on a dedicated runner thread, and clients poll
//! `GET /v1/jobs/{id}` for progress, fetch `GET /v1/jobs/{id}/result`
//! when complete, or `DELETE /v1/jobs/{id}` to cancel cooperatively
//! through the job's [`CancelToken`].
//!
//! # Crash safety
//!
//! With a job directory configured ([`crate::http::ServerConfig::job_dir`],
//! `--job-dir`) every completed sweep point is checkpointed to
//! `<dir>/<id>.json` with the same atomic discipline as the plan-cache
//! snapshot: write to a `.tmp` sibling, `sync_all`, rename. A server
//! killed mid-job (even with SIGKILL) restarts with the same directory
//! and resumes every incomplete job from its last checkpoint — and
//! because each point's response fragment is serialized independently,
//! the resumed job's final body is **byte-identical** to an uninterrupted
//! run (the workspace determinism contract, extended across process
//! lifetimes).
//!
//! The checkpoint stores response fragments as JSON *strings* (escaped),
//! never as re-parsed values: round-tripping through a JSON value would
//! have to preserve key order to keep the bytes identical, and storing
//! the rendered text sidesteps that entirely. The final body is simply
//! `"[" + fragments.join(",") + "]"` — exactly how the vendored
//! serializer renders a `Vec`.
//!
//! # Tenants
//!
//! [`TenantQuota`] is the token-bucket admission layer keyed by the
//! `x-arrayflex-tenant` header (absent → `"anonymous"`): each tenant's
//! bucket refills at `--tenant-rate` tokens per second up to
//! `--tenant-burst`, and a request finding its bucket empty is answered
//! `429` + `Retry-After` on the loop thread. Independently,
//! `--tenant-max-jobs` caps each tenant's concurrently active jobs.

use crate::api::{self, AppState};
use gemm::CancelToken;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::thread::JoinHandle;
use std::time::Instant;

/// Upper bound on distinct tenant token buckets held at once; beyond it,
/// fully-refilled buckets (indistinguishable from fresh ones) are pruned
/// so hostile tenant churn cannot grow the map without bound.
const MAX_TENANT_BUCKETS: usize = 1024;

/// Cancellation reason a `DELETE /v1/jobs/{id}` fires into the runner.
pub(crate) const JOB_CANCEL_REASON: &str = "cancelled by client";
/// Cancellation reason a graceful shutdown fires into every runner; the
/// job's checkpoint keeps `"running"` status so a restart resumes it.
pub(crate) const SHUTDOWN_REASON: &str = "server shutting down";

/// Lifecycle state of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum JobStatus {
    /// Points are still executing (or will resume at the next start).
    Running,
    /// Every point completed; the result body is available.
    Completed,
    /// Cancelled through `DELETE`; terminal.
    Cancelled,
    /// A point failed; terminal, with the error recorded.
    Failed,
}

impl JobStatus {
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            Self::Running => "running",
            Self::Completed => "completed",
            Self::Cancelled => "cancelled",
            Self::Failed => "failed",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s {
            "running" => Some(Self::Running),
            "completed" => Some(Self::Completed),
            "cancelled" => Some(Self::Cancelled),
            "failed" => Some(Self::Failed),
            _ => None,
        }
    }
}

/// Mutable progress of one job, guarded by its entry's mutex: status
/// transitions and fragment appends are atomic with respect to each
/// other, so `DELETE` racing the final point settles deterministically.
#[derive(Debug)]
struct JobProgress {
    status: JobStatus,
    /// Serialized response fragments of the completed points, in point
    /// order.
    fragments: Vec<String>,
    /// Failure message when `status == Failed`, `""` otherwise.
    error: String,
}

/// One submitted job.
#[derive(Debug)]
pub(crate) struct JobEntry {
    id: String,
    tenant: String,
    /// Fires on `DELETE` (terminal) or shutdown (resumable); the runner
    /// observes it between points.
    token: CancelToken,
    /// Total sweep points the job decomposes into.
    total: usize,
    /// The original request body, persisted so a restart re-derives the
    /// identical point list.
    request: String,
    progress: Mutex<JobProgress>,
}

/// Locks a jobs mutex, recovering the data if a panicking thread
/// poisoned it (same rationale as the metrics counters: per-entry
/// invariants survive an unwound runner).
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

impl JobEntry {
    /// The job's identifier.
    pub(crate) fn id(&self) -> &str {
        &self.id
    }

    /// The tenant that submitted the job.
    pub(crate) fn tenant(&self) -> &str {
        &self.tenant
    }

    /// `(status, completed points, total points, error)` snapshot.
    pub(crate) fn snapshot(&self) -> (JobStatus, usize, usize, String) {
        let progress = lock(&self.progress);
        (
            progress.status,
            progress.fragments.len(),
            self.total,
            progress.error.clone(),
        )
    }

    /// The assembled result body, when the job completed.
    pub(crate) fn result(&self) -> Option<Vec<u8>> {
        let progress = lock(&self.progress);
        if progress.status != JobStatus::Completed {
            return None;
        }
        Some(assemble(&progress.fragments))
    }

    /// Requests cancellation: flips a running job to `Cancelled` and
    /// fires its token. Returns `true` when this call performed the
    /// transition (the runner will acknowledge at the next point
    /// boundary), `false` when the job was already terminal.
    pub(crate) fn cancel_by_client(&self) -> bool {
        {
            let mut progress = lock(&self.progress);
            if progress.status != JobStatus::Running {
                return false;
            }
            progress.status = JobStatus::Cancelled;
        }
        self.token.cancel(JOB_CANCEL_REASON);
        true
    }
}

/// Joins response fragments into the body `serde_json::to_string` would
/// have produced for the full `Vec` (asserted byte-for-byte by the job
/// tests against `/v1/sweep`).
fn assemble(fragments: &[String]) -> Vec<u8> {
    let mut body = String::with_capacity(2 + fragments.iter().map(|f| f.len() + 1).sum::<usize>());
    body.push('[');
    for (index, fragment) in fragments.iter().enumerate() {
        if index > 0 {
            body.push(',');
        }
        body.push_str(fragment);
    }
    body.push(']');
    body.into_bytes()
}

/// On-disk checkpoint of one job (`<job-dir>/<id>.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Checkpoint {
    id: String,
    tenant: String,
    status: String,
    total: usize,
    request: String,
    fragments: Vec<String>,
    error: String,
}

/// The job table, runner threads and checkpoint directory of one server.
#[derive(Debug, Default)]
pub(crate) struct JobStore {
    dir: Option<PathBuf>,
    jobs: Mutex<BTreeMap<String, Arc<JobEntry>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Back-reference to the owning state, set once it is wrapped in an
    /// `Arc` (runner threads need an owned handle); submissions before
    /// attachment are refused.
    app: OnceLock<Weak<AppState>>,
    counter: std::sync::atomic::AtomicU64,
}

impl JobStore {
    /// Creates the store, creating the checkpoint directory if needed (a
    /// directory that cannot be created downgrades to in-memory jobs,
    /// loudly).
    pub(crate) fn new(dir: Option<PathBuf>) -> Self {
        let dir = dir.and_then(|dir| match fs::create_dir_all(&dir) {
            Ok(()) => Some(dir),
            Err(e) => {
                eprintln!(
                    "job directory {} unusable ({e}); jobs will not survive restarts",
                    dir.display()
                );
                None
            }
        });
        Self {
            dir,
            ..Self::default()
        }
    }

    /// Attaches the owning `Arc<AppState>`; must be called before the
    /// first submission or resume (see [`AppState::shared`]).
    pub(crate) fn attach(&self, state: &Arc<AppState>) {
        let _ = self.app.set(Arc::downgrade(state));
    }

    /// Jobs currently `Running` for one tenant (the `--tenant-max-jobs`
    /// admission count).
    pub(crate) fn active_for(&self, tenant: &str) -> usize {
        lock(&self.jobs)
            .values()
            .filter(|e| e.tenant == tenant && lock(&e.progress).status == JobStatus::Running)
            .count()
    }

    /// Looks a job up by id.
    pub(crate) fn get(&self, id: &str) -> Option<Arc<JobEntry>> {
        lock(&self.jobs).get(id).cloned()
    }

    /// Submits one decoded-and-validated job and spawns its runner.
    ///
    /// # Errors
    ///
    /// Refused when the store has no attached state to run against (a
    /// host that never called [`JobStore::attach`]).
    pub(crate) fn submit(
        &self,
        tenant: &str,
        request: String,
        total: usize,
    ) -> Result<Arc<JobEntry>, &'static str> {
        let state = self
            .app
            .get()
            .and_then(Weak::upgrade)
            .ok_or("job execution unavailable on this serving path")?;
        let counter = self
            .counter
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let entry = Arc::new(JobEntry {
            id: fresh_id(counter, request.as_bytes()),
            tenant: tenant.to_owned(),
            token: CancelToken::new(),
            total,
            request,
            progress: Mutex::new(JobProgress {
                status: JobStatus::Running,
                fragments: Vec::new(),
                error: String::new(),
            }),
        });
        lock(&self.jobs).insert(entry.id.clone(), Arc::clone(&entry));
        self.checkpoint(&entry);
        self.spawn_runner(state, Arc::clone(&entry));
        Ok(entry)
    }

    /// Loads every checkpoint in the job directory: terminal jobs become
    /// queryable again (status and result survive the restart), and
    /// `running` jobs resume execution from their last completed point.
    pub(crate) fn resume(&self, state: &Arc<AppState>) {
        let Some(dir) = self.dir.clone() else { return };
        let entries = match fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("job directory {} unreadable at startup: {e}", dir.display());
                return;
            }
        };
        for file in entries.flatten() {
            let path = file.path();
            if path.extension().map_or(true, |ext| ext != "json") {
                continue;
            }
            match load_checkpoint(&path) {
                Ok(entry) => {
                    let entry = Arc::new(entry);
                    let running = lock(&entry.progress).status == JobStatus::Running;
                    lock(&self.jobs).insert(entry.id.clone(), Arc::clone(&entry));
                    if running {
                        let (_, completed, total, _) = entry.snapshot();
                        eprintln!(
                            "resuming job {} from checkpoint ({completed}/{total} points)",
                            entry.id
                        );
                        state.metrics().note_job_resumed();
                        state.metrics().note_job_started(&entry.tenant);
                        self.spawn_runner(Arc::clone(state), entry);
                    }
                }
                Err(e) => eprintln!("ignoring unusable job checkpoint {}: {e}", path.display()),
            }
        }
    }

    /// Fires every running job's token with [`SHUTDOWN_REASON`] (their
    /// checkpoints keep `running` status, so a restart resumes them) and
    /// joins the runner threads.
    pub(crate) fn shutdown(&self) {
        for entry in lock(&self.jobs).values() {
            if lock(&entry.progress).status == JobStatus::Running {
                entry.token.cancel(SHUTDOWN_REASON);
            }
        }
        let handles = std::mem::take(&mut *lock(&self.handles));
        for handle in handles {
            let _ = handle.join();
        }
    }

    fn spawn_runner(&self, state: Arc<AppState>, entry: Arc<JobEntry>) {
        let handle = std::thread::Builder::new()
            .name(format!("serve-job-{}", entry.id))
            .spawn(move || run_job(&state, &entry))
            .expect("spawn job runner thread");
        lock(&self.handles).push(handle);
    }

    /// Persists one job's current progress atomically (tmp + sync +
    /// rename, the plan-cache snapshot discipline). A write failure is
    /// reported and the job keeps running in memory.
    fn checkpoint(&self, entry: &JobEntry) {
        let Some(dir) = &self.dir else { return };
        if let Err(e) = persist(dir, entry) {
            eprintln!("job {} checkpoint failed: {e}", entry.id);
        }
    }
}

/// A collision-resistant job id: the `RandomState` keys differ per
/// construction (and per process), so ids stay unique across restarts
/// even for identical request bodies.
fn fresh_id(counter: u64, body: &[u8]) -> String {
    use std::hash::{BuildHasher, Hasher};
    let mut hasher = std::collections::hash_map::RandomState::new().build_hasher();
    hasher.write(body);
    hasher.write_u64(counter);
    format!("{:016x}", hasher.finish())
}

fn persist(dir: &Path, entry: &JobEntry) -> io::Result<()> {
    let checkpoint = {
        let progress = lock(&entry.progress);
        Checkpoint {
            id: entry.id.clone(),
            tenant: entry.tenant.clone(),
            status: progress.status.as_str().to_owned(),
            total: entry.total,
            request: entry.request.clone(),
            fragments: progress.fragments.clone(),
            error: progress.error.clone(),
        }
    };
    let text = serde_json::to_string(&checkpoint)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let path = dir.join(format!("{}.json", entry.id));
    let tmp = dir.join(format!("{}.json.tmp", entry.id));
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        file.sync_all()?;
    }
    fs::rename(&tmp, &path)
}

fn load_checkpoint(path: &Path) -> io::Result<JobEntry> {
    let text = fs::read_to_string(path)?;
    let checkpoint: Checkpoint = serde_json::from_str(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let status = JobStatus::from_str(&checkpoint.status).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown job status {:?}", checkpoint.status),
        )
    })?;
    if checkpoint.fragments.len() > checkpoint.total
        || (status == JobStatus::Completed && checkpoint.fragments.len() != checkpoint.total)
    {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "checkpoint claims {}/{} points",
                checkpoint.fragments.len(),
                checkpoint.total
            ),
        ));
    }
    Ok(JobEntry {
        id: checkpoint.id,
        tenant: checkpoint.tenant,
        token: CancelToken::new(),
        total: checkpoint.total,
        request: checkpoint.request,
        progress: Mutex::new(JobProgress {
            status,
            fragments: checkpoint.fragments,
            error: checkpoint.error,
        }),
    })
}

/// The runner: executes sweep points one at a time, checkpointing after
/// each, observing the cancel token between points (the one-job-item
/// cancellation boundary, same as the synchronous routes).
fn run_job(state: &Arc<AppState>, entry: &Arc<JobEntry>) {
    let spec = match api::decode_sweep_text(&entry.request) {
        Ok(spec) if spec.points() == entry.total => spec,
        Ok(spec) => {
            fail(
                state,
                entry,
                &format!(
                    "checkpoint total {} does not match the request's {} points",
                    entry.total,
                    spec.points()
                ),
            );
            return;
        }
        Err(e) => {
            fail(state, entry, &format!("job request no longer decodes: {e}"));
            return;
        }
    };
    loop {
        if entry.token.cancel_requested() {
            // DELETE flipped the status to Cancelled before firing;
            // shutdown left it Running so the checkpoint stays
            // resumable. Either way, stop at this point boundary.
            let terminal = lock(&entry.progress).status != JobStatus::Running;
            state.jobs().checkpoint(entry);
            if terminal {
                state.metrics().note_cancelled("job");
                state.metrics().note_job_cancelled();
                state.metrics().note_job_finished(&entry.tenant);
            } else {
                state.metrics().note_cancelled("shutdown");
            }
            return;
        }
        let index = lock(&entry.progress).fragments.len();
        if index >= entry.total {
            break;
        }
        match api::sweep_point_fragment(state, &spec, index) {
            Ok(fragment) => {
                lock(&entry.progress).fragments.push(fragment);
                state.jobs().checkpoint(entry);
            }
            Err(e) => {
                fail(state, entry, &format!("point {index} failed: {e}"));
                return;
            }
        }
    }
    {
        let mut progress = lock(&entry.progress);
        if progress.status != JobStatus::Running {
            // A DELETE won the race against the final point; the
            // cancellation branch above never ran, so acknowledge here.
            drop(progress);
            state.jobs().checkpoint(entry);
            state.metrics().note_cancelled("job");
            state.metrics().note_job_cancelled();
            state.metrics().note_job_finished(&entry.tenant);
            return;
        }
        progress.status = JobStatus::Completed;
    }
    state.jobs().checkpoint(entry);
    state.metrics().note_job_completed();
    state.metrics().note_job_finished(&entry.tenant);
}

fn fail(state: &Arc<AppState>, entry: &Arc<JobEntry>, message: &str) {
    eprintln!("job {} failed: {message}", entry.id);
    {
        let mut progress = lock(&entry.progress);
        progress.status = JobStatus::Failed;
        progress.error = message.to_owned();
    }
    state.jobs().checkpoint(entry);
    state.metrics().note_job_failed();
    state.metrics().note_job_finished(&entry.tenant);
}

/// One tenant's token bucket.
#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last: Instant,
}

/// Per-tenant token-bucket admission (see the module docs).
#[derive(Debug)]
pub(crate) struct TenantQuota {
    rate: f64,
    burst: f64,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl TenantQuota {
    pub(crate) fn new(rate: f64, burst: f64) -> Self {
        Self {
            rate: rate.max(0.0),
            // A bucket must hold at least one whole token or nothing is
            // ever admitted.
            burst: burst.max(1.0),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Spends one token from `tenant`'s bucket; `false` means the
    /// request must be shed with a 429.
    pub(crate) fn admit(&self, tenant: &str) -> bool {
        let now = Instant::now();
        let mut buckets = lock(&self.buckets);
        if buckets.len() >= MAX_TENANT_BUCKETS && !buckets.contains_key(tenant) {
            // Prune buckets that have fully refilled: they are
            // indistinguishable from fresh ones, so dropping them changes
            // no admission decision.
            let (rate, burst) = (self.rate, self.burst);
            buckets.retain(|_, bucket| {
                bucket.tokens + now.duration_since(bucket.last).as_secs_f64() * rate < burst
            });
        }
        let bucket = buckets.entry(tenant.to_owned()).or_insert(Bucket {
            tokens: self.burst,
            last: now,
        });
        let elapsed = now.duration_since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.rate).min(self.burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragments_assemble_like_a_serialized_vec() {
        let fragments: Vec<String> = vec!["{\"a\":1}".into(), "{\"b\":2}".into()];
        assert_eq!(assemble(&fragments), b"[{\"a\":1},{\"b\":2}]");
        assert_eq!(assemble(&[]), b"[]");
        // The join matches the vendored serializer's rendering of a Vec.
        let values = vec![
            serde::Value::Object(vec![("a".to_owned(), serde::Value::Int(1))]),
            serde::Value::Object(vec![("b".to_owned(), serde::Value::Int(2))]),
        ];
        assert_eq!(
            assemble(&fragments),
            serde_json::to_string(&values).unwrap().into_bytes()
        );
    }

    #[test]
    fn job_ids_are_unique_even_for_identical_bodies() {
        let a = fresh_id(0, b"body");
        let b = fresh_id(0, b"body");
        assert_ne!(a, b);
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn a_tenant_bucket_empties_and_refills() {
        let quota = TenantQuota::new(1000.0, 2.0);
        assert!(quota.admit("acme"));
        assert!(quota.admit("acme"));
        // Burst exhausted; an independent tenant is unaffected.
        let third = quota.admit("acme");
        assert!(quota.admit("other"));
        if !third {
            // At 1000 tokens/s the bucket refills within a few ms.
            let refilled = (0..200).any(|_| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                quota.admit("acme")
            });
            assert!(refilled, "bucket never refilled");
        }
    }

    #[test]
    fn a_zero_rate_bucket_sheds_after_its_burst() {
        let quota = TenantQuota::new(0.0, 1.0);
        assert!(quota.admit("acme"));
        assert!(!quota.admit("acme"));
        assert!(!quota.admit("acme"));
    }

    #[test]
    fn checkpoints_round_trip_through_disk() {
        let dir = std::env::temp_dir().join(format!("af-jobs-test-{}", fresh_id(0, b"dir")));
        fs::create_dir_all(&dir).unwrap();
        let entry = JobEntry {
            id: "abc123".to_owned(),
            tenant: "acme".to_owned(),
            token: CancelToken::new(),
            total: 3,
            request: "{\"array_sizes\":[16]}".to_owned(),
            progress: Mutex::new(JobProgress {
                status: JobStatus::Running,
                fragments: vec!["{\"x\":1}".to_owned()],
                error: String::new(),
            }),
        };
        persist(&dir, &entry).unwrap();
        let loaded = load_checkpoint(&dir.join("abc123.json")).unwrap();
        assert_eq!(loaded.id, "abc123");
        assert_eq!(loaded.tenant, "acme");
        assert_eq!(loaded.total, 3);
        assert_eq!(loaded.request, entry.request);
        let progress = lock(&loaded.progress);
        assert_eq!(progress.status, JobStatus::Running);
        assert_eq!(progress.fragments, vec!["{\"x\":1}".to_owned()]);
        drop(progress);
        // A corrupted checkpoint is rejected, not half-loaded.
        fs::write(dir.join("bad.json"), b"{not json").unwrap();
        assert!(load_checkpoint(&dir.join("bad.json")).is_err());
        // A checkpoint claiming more points than its total is rejected.
        fs::write(
            dir.join("over.json"),
            br#"{"id":"over","tenant":"t","status":"running","total":1,"request":"{}","fragments":["a","b"],"error":""}"#,
        )
        .unwrap();
        assert!(load_checkpoint(&dir.join("over.json")).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cancelling_a_job_is_terminal_and_idempotent() {
        let entry = JobEntry {
            id: "j".to_owned(),
            tenant: "t".to_owned(),
            token: CancelToken::new(),
            total: 2,
            request: String::new(),
            progress: Mutex::new(JobProgress {
                status: JobStatus::Running,
                fragments: Vec::new(),
                error: String::new(),
            }),
        };
        assert!(entry.cancel_by_client());
        assert!(entry.token.cancel_requested());
        assert!(!entry.cancel_by_client(), "second DELETE is a no-op");
        let (status, completed, total, _) = entry.snapshot();
        assert_eq!(status, JobStatus::Cancelled);
        assert_eq!((completed, total), (0, 2));
        assert!(entry.result().is_none(), "cancelled jobs have no result");
    }
}
