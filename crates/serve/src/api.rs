//! The JSON API of the planning/simulation service.
//!
//! Five routes:
//!
//! * `POST /v1/plan` — plan one network on one array geometry; the
//!   response body is **byte-identical** to
//!   `serde_json::to_string(&model.plan_*(...))`, whether it was computed
//!   or served from the plan cache;
//! * `POST /v1/sweep` — an evaluation sweep over array sizes × networks,
//!   fanned out through [`ParallelExecutor`]; byte-identical to
//!   `serde_json::to_string(&EvaluationSweep {..}.run(&networks))`;
//! * `POST /v1/simulate` — a size-capped cycle-accurate cross-check of one
//!   random GEMM against the analytical model;
//! * `GET /healthz` — liveness;
//! * `GET /metrics` — Prometheus text format (see [`crate::metrics`]).
//!
//! Handlers are pure functions from a parsed [`HttpRequest`] to an
//! [`HttpResponse`] over shared [`AppState`], so the whole API surface is
//! testable without sockets.

use crate::http::{HttpRequest, HttpResponse, ServerConfig};
use crate::metrics::Metrics;
use crate::rendered::RenderedCache;
use arrayflex::sa_sim::{ArrayPool, Dataflow};
use arrayflex::{
    ArrayFlexModel, CacheOutcome, EvaluationSweep, NetworkComparison, ParallelExecutor, PlanCache,
    PlanKind,
};
use cnn::{DepthwiseMapping, Network};
use gemm::rng::SplitMix64;
use gemm::Matrix;
use serde::{Deserialize, Serialize, Value};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Maximum array edge length accepted by `/v1/plan` and `/v1/sweep`.
pub const MAX_ARRAY_EDGE: u32 = 4096;
/// Maximum number of array sizes in one sweep request.
pub const MAX_SWEEP_SIZES: usize = 8;
/// Maximum number of networks in one sweep request.
pub const MAX_SWEEP_NETWORKS: usize = 8;
/// Maximum worker threads a sweep request may ask for.
pub const MAX_SWEEP_THREADS: usize = 16;
/// Maximum array edge length accepted by `/v1/simulate` (the simulator
/// evaluates every PE every cycle, so this is deliberately small).
pub const MAX_SIM_EDGE: u32 = 64;
/// Maximum `T * N * M` product accepted by `/v1/simulate`.
pub const MAX_SIM_MACS: u64 = 1 << 21;

/// Shared state of one server instance.
#[derive(Debug)]
pub struct AppState {
    cache: PlanCache,
    metrics: Metrics,
    max_body_bytes: usize,
    accepted: AtomicU64,
    sim_pool: ArrayPool,
    log_requests: bool,
    /// Rendered-response memo: full `/v1/plan` 200 bodies keyed by raw
    /// request bytes, kept coherent with `cache` (see `crate::rendered`).
    rendered: RenderedCache,
    /// Per-route running estimates (largest response seen so far) used to
    /// pre-size JSON response buffers: `[/v1/plan, /v1/sweep,
    /// /v1/simulate]`. Serialization appends into a
    /// `String::with_capacity(estimate)` instead of growing an empty
    /// buffer through repeated reallocation on every request.
    body_estimates: [AtomicUsize; 3],
    /// Per-request deadline (`ServerConfig::request_deadline`): queued
    /// work older than this is answered 503 without computing.
    request_deadline: Option<std::time::Duration>,
    /// Test-only `POST /__test/panic` route proving panic isolation
    /// (`ServerConfig::panic_route`).
    panic_route: bool,
}

/// Index into [`AppState`]'s per-route response-size estimates.
#[derive(Debug, Clone, Copy)]
enum BodyRoute {
    Plan = 0,
    Sweep = 1,
    Simulate = 2,
}

/// Ceiling on a per-route response-size estimate. One unusually large
/// response must not pin a multi-megabyte upfront allocation onto every
/// later request of the route; beyond this, `String` growth amortizes
/// fine.
const MAX_BODY_ESTIMATE: usize = 1 << 20;

impl AppState {
    /// Builds the state for one server configuration.
    #[must_use]
    pub fn new(config: &ServerConfig) -> Self {
        let mut cache = PlanCache::builder().capacity(config.cache_capacity);
        if let Some(ttl) = config.cache_ttl {
            cache = cache.ttl(ttl);
        }
        if let Some(max_bytes) = config.cache_max_bytes {
            cache = cache.max_bytes(max_bytes);
        }
        Self {
            cache: cache.build(),
            metrics: Metrics::new(),
            max_body_bytes: config.max_body_bytes,
            accepted: AtomicU64::new(0),
            sim_pool: ArrayPool::new(),
            log_requests: config.log_requests,
            rendered: RenderedCache::default(),
            body_estimates: [
                AtomicUsize::new(0),
                AtomicUsize::new(0),
                AtomicUsize::new(0),
            ],
            request_deadline: config.request_deadline,
            panic_route: config.panic_route,
        }
    }

    /// Serializes one JSON response body into a buffer pre-sized from the
    /// route's running estimate (the largest response the route has
    /// produced so far, capped at [`MAX_BODY_ESTIMATE`]), then feeds the
    /// observed size back into the estimate. The bytes are identical to
    /// `serde_json::to_string`.
    fn sized_json_body<T: Serialize + ?Sized>(&self, route: BodyRoute, value: &T) -> Vec<u8> {
        let estimate = &self.body_estimates[route as usize];
        let mut body = String::with_capacity(estimate.load(Ordering::Relaxed));
        serde_json::to_string_into(value, &mut body).expect("responses serialize to JSON");
        estimate.fetch_max(body.len().min(MAX_BODY_ESTIMATE), Ordering::Relaxed);
        body.into_bytes()
    }

    /// The plan cache shared by every worker.
    #[must_use]
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// The pool of simulator arrays `/v1/simulate` reuses across requests
    /// (constructing and zero-initializing a
    /// [`SystolicArray`](arrayflex::sa_sim::SystolicArray) per request is
    /// measurable churn under load; results are unchanged). Each pooled
    /// array also owns its west/south staging scratch, so a worker
    /// serving simulate traffic reuses the same staging buffers request
    /// after request instead of allocating them per request.
    #[must_use]
    pub fn sim_pool(&self) -> &ArrayPool {
        &self.sim_pool
    }

    #[cfg(test)]
    fn body_estimate(&self, route: BodyRoute) -> usize {
        self.body_estimates[route as usize].load(Ordering::Relaxed)
    }

    /// The request metrics shared by every worker.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The request-body size cap in bytes.
    #[must_use]
    pub fn max_body_bytes(&self) -> usize {
        self.max_body_bytes
    }

    /// Number of connections the acceptor has handed to the worker pool.
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::SeqCst)
    }

    /// Whether the connection loop emits one structured log line per
    /// served request (see `ServerConfig::log_requests`).
    #[must_use]
    pub fn log_requests(&self) -> bool {
        self.log_requests
    }

    pub(crate) fn note_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::SeqCst);
    }

    /// The configured per-request deadline, if any.
    #[must_use]
    pub fn request_deadline(&self) -> Option<std::time::Duration> {
        self.request_deadline
    }

    /// Looks up a rendered `/v1/plan` body for this exact request body
    /// *ignoring coherence* (generation and TTL): the graceful-degradation
    /// path the event loop uses under shed pressure. The body is still
    /// byte-identical to a fresh computation — planning is a pure function
    /// of the request — but may predate cache churn, so responses served
    /// this way carry the stale flag header.
    pub(crate) fn stale_rendered(&self, request_body: &[u8]) -> Option<std::sync::Arc<Vec<u8>>> {
        self.rendered.lookup_stale(request_body)
    }
}

/// The fixed label a request path maps to in the metrics (unknown paths
/// collapse into `"other"` so hostile traffic cannot grow the label set).
#[must_use]
pub fn route_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/metrics" => "/metrics",
        "/v1/plan" => "/v1/plan",
        "/v1/sweep" => "/v1/sweep",
        "/v1/simulate" => "/v1/simulate",
        _ => "other",
    }
}

/// What the serving layer logs about one handled request beyond its
/// status: the plan-cache interaction, when the route had one.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestTrace {
    /// Cache outcome and key hash of a `/v1/plan` lookup (`None` for
    /// routes that never consulted the cache, or when planning failed
    /// before the lookup).
    pub cache: Option<(CacheOutcome, u64)>,
}

/// Dispatches one parsed request to its handler.
#[must_use]
pub fn handle(state: &AppState, request: &HttpRequest) -> HttpResponse {
    handle_traced(state, request).0
}

/// [`handle`], also reporting the [`RequestTrace`] the connection loop
/// feeds into per-request log lines.
#[must_use]
pub fn handle_traced(state: &AppState, request: &HttpRequest) -> (HttpResponse, RequestTrace) {
    let mut trace = RequestTrace::default();
    let response = match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => HttpResponse::json(&b"{\"status\":\"ok\"}"[..]),
        ("GET", "/metrics") => {
            HttpResponse::text(state.metrics.render_prometheus(&state.cache).into_bytes())
        }
        ("POST", "/v1/plan") => {
            if let Some((body, hit_trace)) = rendered_plan(state, &request.body) {
                trace = hit_trace;
                HttpResponse::json(body.as_slice().to_vec())
            } else {
                let response = with_json_body(request, |value| plan(state, value, &mut trace));
                if response.status == 200 {
                    if let Some((_, key_hash)) = trace.cache {
                        state.rendered.store(
                            &state.cache,
                            &request.body,
                            key_hash,
                            std::sync::Arc::new(response.body.clone()),
                        );
                    }
                }
                response
            }
        }
        ("POST", "/v1/sweep") => with_json_body(request, |value| sweep(state, value)),
        ("POST", "/v1/simulate") => with_json_body(request, |value| simulate(state, value)),
        ("POST", "/__test/panic") if state.panic_route => {
            // Fault-harness escape hatch (ServerConfig::panic_route, tests
            // only): prove a handler panic is caught, answered with a
            // structured 500, and leaves the worker alive.
            panic!("test-injected handler panic")
        }
        (_, "/healthz" | "/metrics" | "/v1/plan" | "/v1/sweep" | "/v1/simulate") => {
            HttpResponse::error(405, &format!("method {} not allowed here", request.method))
        }
        (_, path) => HttpResponse::error(404, &format!("no route for {path}")),
    };
    (response, trace)
}

/// Serves `/v1/plan` from the rendered-response memo when a coherent
/// entry exists for this exact request body (see [`crate::rendered`] for
/// the coherence rules). Returns the shared response bytes and the trace
/// of the hit; `None` falls through to the full planning path.
///
/// The event loop calls this inline — a memo hit never crosses into the
/// worker pool — and [`handle_traced`] calls it too, so the legacy
/// thread-per-connection path and direct API tests stay byte-identical
/// with the fast path.
pub(crate) fn rendered_plan(
    state: &AppState,
    request_body: &[u8],
) -> Option<(std::sync::Arc<Vec<u8>>, RequestTrace)> {
    let (body, key_hash) = state.rendered.lookup(&state.cache, request_body)?;
    state.metrics.note_rendered_hit();
    Some((
        body,
        RequestTrace {
            cache: Some((CacheOutcome::Hit, key_hash)),
        },
    ))
}

/// Parses the body as JSON (rejecting invalid UTF-8 and malformed JSON
/// with a structured 400) before running the handler.
fn with_json_body(
    request: &HttpRequest,
    handler: impl FnOnce(&Value) -> Result<HttpResponse, ApiError>,
) -> HttpResponse {
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return HttpResponse::error(400, "request body is not valid UTF-8"),
    };
    let value: Value = match serde_json::from_str(text) {
        Ok(value) => value,
        Err(e) => return HttpResponse::error(400, &format!("malformed JSON body: {e}")),
    };
    match handler(&value) {
        Ok(response) => response,
        Err(e) => e.into_response(),
    }
}

/// A handler-level failure: an HTTP status and a human-readable message.
pub(crate) struct ApiError {
    status: u16,
    message: String,
}

impl ApiError {
    fn bad_request(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
        }
    }

    /// The structured error response this failure renders to.
    pub(crate) fn into_response(self) -> HttpResponse {
        HttpResponse::error(self.status, &self.message)
    }
}

impl From<arrayflex::ArrayFlexError> for ApiError {
    fn from(e: arrayflex::ArrayFlexError) -> Self {
        // Library-level rejections of a well-formed request (bad depth,
        // zero dimension, ...) are client errors, not server faults.
        ApiError::bad_request(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Request decoding helpers
// ---------------------------------------------------------------------------

/// A network referenced by name or provided inline as a full layer table.
#[derive(Debug, Clone)]
pub enum NetworkSpec {
    /// One of the built-in model names (see [`resolve_named_network`]).
    Named(String),
    /// A complete inline network.
    Inline(Network),
}

impl NetworkSpec {
    fn from_value(value: &Value) -> Result<Self, ApiError> {
        match value {
            Value::Str(name) => Ok(Self::Named(name.clone())),
            Value::Object(_) => Network::from_value(value)
                .map(Self::Inline)
                .map_err(|e| ApiError::bad_request(format!("invalid inline network: {e}"))),
            other => Err(ApiError::bad_request(format!(
                "`network` must be a name or an inline network object, found {other:?}"
            ))),
        }
    }

    fn resolve(&self) -> Result<Network, ApiError> {
        match self {
            Self::Named(name) => resolve_named_network(name).ok_or_else(|| {
                ApiError::bad_request(format!(
                    "unknown network \"{name}\" (available: {})",
                    NAMED_NETWORKS.join(", ")
                ))
            }),
            Self::Inline(network) => {
                if network.is_empty() {
                    return Err(ApiError::bad_request("inline network has no layers"));
                }
                Ok(network.clone())
            }
        }
    }
}

/// Names accepted by [`resolve_named_network`].
pub const NAMED_NETWORKS: [&str; 6] = [
    "resnet18",
    "resnet34",
    "resnet50",
    "mobilenet_v1",
    "convnext_tiny",
    "vgg16",
];

/// Looks up one of the built-in layer tables by name.
#[must_use]
pub fn resolve_named_network(name: &str) -> Option<Network> {
    match name {
        "resnet18" => Some(cnn::models::resnet18()),
        "resnet34" => Some(cnn::models::resnet34()),
        "resnet50" => Some(cnn::models::resnet50()),
        "mobilenet_v1" => Some(cnn::models::mobilenet_v1()),
        "convnext_tiny" => Some(cnn::models::convnext_tiny()),
        "vgg16" => Some(cnn::models::vgg16()),
        _ => None,
    }
}

fn required<'v>(value: &'v Value, field: &str) -> Result<&'v Value, ApiError> {
    value
        .get(field)
        .ok_or_else(|| ApiError::bad_request(format!("missing field `{field}`")))
}

fn decode<T: Deserialize>(value: &Value, field: &str) -> Result<T, ApiError> {
    T::from_value(required(value, field)?)
        .map_err(|e| ApiError::bad_request(format!("invalid field `{field}`: {e}")))
}

fn decode_optional<T: Deserialize>(value: &Value, field: &str) -> Result<Option<T>, ApiError> {
    match value.get(field) {
        None | Some(Value::Null) => Ok(None),
        Some(present) => T::from_value(present)
            .map(Some)
            .map_err(|e| ApiError::bad_request(format!("invalid field `{field}`: {e}"))),
    }
}

fn decode_mapping(value: &Value) -> Result<DepthwiseMapping, ApiError> {
    Ok(decode_optional::<DepthwiseMapping>(value, "mapping")?.unwrap_or_default())
}

/// Decodes the optional `dataflow` field of a simulate request:
/// `"weight_stationary"` (the default) or `"output_stationary"`.
fn decode_dataflow(value: &Value) -> Result<Dataflow, ApiError> {
    Ok(decode_optional::<Dataflow>(value, "dataflow")?.unwrap_or_default())
}

/// Decodes the optional `dataflows` field of a sweep request: a non-empty
/// list of dataflow names, defaulting to the paper's weight-stationary
/// architecture.
fn decode_dataflows(value: &Value) -> Result<Vec<Dataflow>, ApiError> {
    match decode_optional::<Vec<Dataflow>>(value, "dataflows")? {
        None => Ok(vec![Dataflow::WeightStationary]),
        Some(dataflows) if dataflows.is_empty() => Err(ApiError::bad_request(
            "`dataflows` must list at least one dataflow",
        )),
        Some(dataflows) if dataflows.len() > Dataflow::ALL.len() => Err(ApiError::bad_request(
            format!("`dataflows` must list at most {} dataflows", Dataflow::ALL.len()),
        )),
        Some(dataflows) => Ok(dataflows),
    }
}

/// Decodes the optional `design` field of a plan request:
/// `"arrayflex"` (default), `"conventional"`, or `{"fixed": k}`.
fn decode_plan_kind(value: &Value) -> Result<PlanKind, ApiError> {
    match value.get("design") {
        None | Some(Value::Null) => Ok(PlanKind::ArrayFlex),
        Some(Value::Str(s)) if s == "arrayflex" => Ok(PlanKind::ArrayFlex),
        Some(Value::Str(s)) if s == "conventional" => Ok(PlanKind::Conventional),
        Some(other) => {
            if let Some(k_value) = other.get("fixed") {
                let k = u32::from_value(k_value).map_err(|e| {
                    ApiError::bad_request(format!("invalid field `design.fixed`: {e}"))
                })?;
                return Ok(PlanKind::Fixed(k));
            }
            Err(ApiError::bad_request(
                "`design` must be \"arrayflex\", \"conventional\" or {\"fixed\": k}",
            ))
        }
    }
}

fn validated_geometry(rows: u32, cols: u32) -> Result<ArrayFlexModel, ApiError> {
    if rows == 0 || cols == 0 || rows > MAX_ARRAY_EDGE || cols > MAX_ARRAY_EDGE {
        return Err(ApiError::bad_request(format!(
            "array geometry {rows}x{cols} outside the supported 1..={MAX_ARRAY_EDGE} range"
        )));
    }
    Ok(ArrayFlexModel::new(rows, cols)?)
}

// ---------------------------------------------------------------------------
// POST /v1/plan
// ---------------------------------------------------------------------------

fn plan(
    state: &AppState,
    value: &Value,
    trace: &mut RequestTrace,
) -> Result<HttpResponse, ApiError> {
    let network = NetworkSpec::from_value(required(value, "network")?)?.resolve()?;
    let rows: u32 = decode(value, "rows")?;
    let cols: u32 = decode(value, "cols")?;
    let mapping = decode_mapping(value)?;
    let kind = decode_plan_kind(value)?;
    let model = validated_geometry(rows, cols)?;
    let (plan, outcome, key_hash) =
        model.plan_cached_traced(&state.cache, &network, mapping, kind)?;
    trace.cache = Some((outcome, key_hash));
    Ok(HttpResponse::json(state.sized_json_body(BodyRoute::Plan, &*plan)))
}

// ---------------------------------------------------------------------------
// POST /v1/sweep
// ---------------------------------------------------------------------------

fn sweep(state: &AppState, value: &Value) -> Result<HttpResponse, ApiError> {
    let sizes: Vec<u32> = decode(value, "array_sizes")?;
    if sizes.is_empty() || sizes.len() > MAX_SWEEP_SIZES {
        return Err(ApiError::bad_request(format!(
            "`array_sizes` must list 1..={MAX_SWEEP_SIZES} sizes"
        )));
    }
    if let Some(&bad) = sizes.iter().find(|&&s| s == 0 || s > MAX_ARRAY_EDGE) {
        return Err(ApiError::bad_request(format!(
            "array size {bad} outside the supported 1..={MAX_ARRAY_EDGE} range"
        )));
    }
    let specs = match required(value, "networks")? {
        Value::Array(items) => items
            .iter()
            .map(NetworkSpec::from_value)
            .collect::<Result<Vec<_>, _>>()?,
        other => {
            return Err(ApiError::bad_request(format!(
                "`networks` must be an array, found {other:?}"
            )))
        }
    };
    if specs.is_empty() || specs.len() > MAX_SWEEP_NETWORKS {
        return Err(ApiError::bad_request(format!(
            "`networks` must list 1..={MAX_SWEEP_NETWORKS} networks"
        )));
    }
    let networks = specs
        .iter()
        .map(NetworkSpec::resolve)
        .collect::<Result<Vec<_>, _>>()?;
    let mapping = decode_mapping(value)?;
    let dataflows = decode_dataflows(value)?;
    let threads = decode_optional::<usize>(value, "threads")?.unwrap_or(1);
    if threads > MAX_SWEEP_THREADS {
        return Err(ApiError::bad_request(format!(
            "`threads` must be 0..={MAX_SWEEP_THREADS}"
        )));
    }
    // `0` auto-detects the hardware parallelism; cap the detected value
    // too, so no request can spawn more than MAX_SWEEP_THREADS workers on
    // a many-core host.
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .min(MAX_SWEEP_THREADS)
    } else {
        threads
    };

    // Fan the (size x network x dataflow x pipeline choice) plan jobs out
    // through the executor, serving each one from the shared plan cache.
    // Re-pairing in submission order reproduces `EvaluationSweep::run`
    // byte for byte.
    let executor = ParallelExecutor::new(threads);
    let mut jobs = Vec::with_capacity(sizes.len() * networks.len() * dataflows.len() * 2);
    for &size in &sizes {
        for network in &networks {
            for &dataflow in &dataflows {
                jobs.push((size, network, dataflow, PlanKind::Conventional));
                jobs.push((size, network, dataflow, PlanKind::ArrayFlex));
            }
        }
    }
    let plans = executor.try_run(jobs, |(size, network, dataflow, kind)| {
        let model = ArrayFlexModel::new(size, size)?.with_dataflow(dataflow);
        model
            .plan_cached(&state.cache, network, mapping, kind)
            .map(|plan| (dataflow, plan))
    })?;
    let mut comparisons = Vec::with_capacity(plans.len() / 2);
    let mut plans = plans.into_iter();
    while let (Some((dataflow, conventional)), Some((_, proposed))) = (plans.next(), plans.next())
    {
        comparisons.push(NetworkComparison::from_plans_for(
            dataflow,
            (*conventional).clone(),
            (*proposed).clone(),
        ));
    }
    Ok(HttpResponse::json(
        state.sized_json_body(BodyRoute::Sweep, &comparisons),
    ))
}

/// The `EvaluationSweep` a sweep request is equivalent to (used by tests to
/// assert byte-identical responses).
#[must_use]
pub fn equivalent_sweep(
    sizes: &[u32],
    dataflows: &[Dataflow],
    mapping: DepthwiseMapping,
) -> EvaluationSweep {
    EvaluationSweep {
        array_sizes: sizes.to_vec(),
        dataflows: dataflows.to_vec(),
        mapping,
        threads: 1,
    }
}

// ---------------------------------------------------------------------------
// POST /v1/simulate
// ---------------------------------------------------------------------------

/// Response of `POST /v1/simulate`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimulateResponse {
    /// Array rows simulated.
    pub rows: u32,
    /// Array columns simulated.
    pub cols: u32,
    /// Pipeline collapsing depth.
    pub k: u32,
    /// Dataflow the array executed.
    pub dataflow: Dataflow,
    /// Streaming dimension of the random GEMM.
    pub t: u64,
    /// Reduction dimension of the random GEMM.
    pub n: u64,
    /// Output dimension of the random GEMM.
    pub m: u64,
    /// Seed the operands were generated from.
    pub seed: u64,
    /// Cycles measured by the register-level simulation.
    pub simulated_cycles: u64,
    /// Cycles predicted by Equations (1)-(4).
    pub predicted_cycles: u64,
    /// Whether the two cycle counts agree.
    pub cycles_match: bool,
    /// Whether the simulated product matched the reference GEMM.
    pub functionally_correct: bool,
    /// Useful multiply-accumulates the simulator counted.
    pub macs: u64,
    /// Array-sized tiles the GEMM decomposed into.
    pub tiles: u64,
}

/// One fully decoded and validated `/v1/simulate` request. Extracted from
/// the handler so the admission layer's gather window can decode requests
/// up front, group them by [`SimRequest::batch_key`] and run a whole batch
/// through `ParallelExecutor` — while the plain handler path stays the
/// composition of the same two steps, keeping responses byte-identical
/// whether a request was batched or not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct SimRequest {
    rows: u32,
    cols: u32,
    k: u32,
    t: u64,
    n: u64,
    m: u64,
    seed: u64,
    dataflow: Dataflow,
}

impl SimRequest {
    /// Requests sharing this key simulate the same array configuration,
    /// so one batch can reuse one pooled-array working set.
    pub(crate) fn batch_key(self) -> (u32, u32, u32, Dataflow) {
        (self.rows, self.cols, self.k, self.dataflow)
    }
}

/// Decodes and validates one simulate request body.
pub(crate) fn decode_simulate(value: &Value) -> Result<SimRequest, ApiError> {
    let rows: u32 = decode(value, "rows")?;
    let cols: u32 = decode(value, "cols")?;
    let k: u32 = decode(value, "k")?;
    let t: u64 = decode(value, "t")?;
    let n: u64 = decode(value, "n")?;
    let m: u64 = decode(value, "m")?;
    let seed = decode_optional::<u64>(value, "seed")?.unwrap_or(0);
    let dataflow = decode_dataflow(value)?;
    if rows == 0 || cols == 0 || rows > MAX_SIM_EDGE || cols > MAX_SIM_EDGE {
        return Err(ApiError::bad_request(format!(
            "simulated array {rows}x{cols} outside the supported 1..={MAX_SIM_EDGE} range"
        )));
    }
    if t == 0 || n == 0 || m == 0 {
        return Err(ApiError::bad_request("GEMM dimensions must be non-zero"));
    }
    let macs = t.saturating_mul(n).saturating_mul(m);
    if macs > MAX_SIM_MACS {
        return Err(ApiError::bad_request(format!(
            "GEMM of {macs} MACs exceeds the cycle-accurate limit of {MAX_SIM_MACS}"
        )));
    }
    Ok(SimRequest {
        rows,
        cols,
        k,
        t,
        n,
        m,
        seed,
        dataflow,
    })
}

/// Runs one validated simulate request to its success response.
pub(crate) fn run_simulate(state: &AppState, req: SimRequest) -> Result<HttpResponse, ApiError> {
    let model = ArrayFlexModel::new(req.rows, req.cols)?.with_dataflow(req.dataflow);
    let mut rng = SplitMix64::new(req.seed);
    let a = Matrix::random(req.t as usize, req.n as usize, &mut rng, -64, 63);
    let b = Matrix::random(req.n as usize, req.m as usize, &mut rng, -64, 63);
    let result = model.simulate_gemm_pooled(state.sim_pool(), &a, &b, req.k, 1)?;
    let response = SimulateResponse {
        rows: req.rows,
        cols: req.cols,
        k: req.k,
        dataflow: req.dataflow,
        t: req.t,
        n: req.n,
        m: req.m,
        seed: req.seed,
        simulated_cycles: result.stats.total_cycles(),
        predicted_cycles: result.predicted.cycles,
        cycles_match: result.cycles_match(),
        functionally_correct: result.functionally_correct,
        macs: result.stats.macs,
        tiles: result.stats.tiles,
    };
    Ok(HttpResponse::json(
        state.sized_json_body(BodyRoute::Simulate, &response),
    ))
}

/// [`run_simulate`] with errors rendered to their wire responses (the
/// shape batch workers need).
pub(crate) fn simulate_response(state: &AppState, req: SimRequest) -> HttpResponse {
    run_simulate(state, req).unwrap_or_else(ApiError::into_response)
}

fn simulate(state: &AppState, value: &Value) -> Result<HttpResponse, ApiError> {
    run_simulate(state, decode_simulate(value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> AppState {
        AppState::new(&ServerConfig::default())
    }

    fn post(path: &str, body: &str) -> HttpRequest {
        HttpRequest {
            method: "POST".to_owned(),
            path: path.to_owned(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn get(path: &str) -> HttpRequest {
        HttpRequest {
            method: "GET".to_owned(),
            path: path.to_owned(),
            body: Vec::new(),
        }
    }

    #[test]
    fn healthz_is_ok() {
        let response = handle(&state(), &get("/healthz"));
        assert_eq!(response.status, 200);
        assert_eq!(response.body, b"{\"status\":\"ok\"}");
    }

    #[test]
    fn plan_matches_the_direct_library_call_byte_for_byte() {
        let state = state();
        let request = post("/v1/plan", r#"{"network":"resnet34","rows":64,"cols":64}"#);
        let response = handle(&state, &request);
        assert_eq!(response.status, 200);
        let model = ArrayFlexModel::new(64, 64).unwrap();
        let direct = model
            .plan_arrayflex(&cnn::models::resnet34(), DepthwiseMapping::default())
            .unwrap();
        assert_eq!(response.body, serde_json::to_string(&direct).unwrap().into_bytes());
        // The repeated request is served from the cache, byte-identically.
        let again = handle(&state, &request);
        assert_eq!(again.body, response.body);
        assert_eq!(state.cache().hits(), 1);
    }

    #[test]
    fn plan_supports_conventional_fixed_and_mapping() {
        let state = state();
        let model = ArrayFlexModel::new(32, 32).unwrap();
        let net = cnn::models::mobilenet_v1();

        let conventional = handle(
            &state,
            &post(
                "/v1/plan",
                r#"{"network":"mobilenet_v1","rows":32,"cols":32,"design":"conventional"}"#,
            ),
        );
        assert_eq!(conventional.status, 200);
        let direct = model.plan_conventional(&net, DepthwiseMapping::default()).unwrap();
        assert_eq!(conventional.body, serde_json::to_string(&direct).unwrap().into_bytes());

        let fixed = handle(
            &state,
            &post(
                "/v1/plan",
                r#"{"network":"mobilenet_v1","rows":32,"cols":32,"design":{"fixed":2},"mapping":"PerGroup"}"#,
            ),
        );
        assert_eq!(fixed.status, 200);
        let direct = model
            .plan_arrayflex_fixed(&net, DepthwiseMapping::PerGroup, 2)
            .unwrap();
        assert_eq!(fixed.body, serde_json::to_string(&direct).unwrap().into_bytes());
    }

    #[test]
    fn plan_accepts_an_inline_network() {
        let state = state();
        let network = cnn::models::synthetic_cnn(2, 8, 16);
        let body = format!(
            r#"{{"network":{},"rows":16,"cols":16}}"#,
            serde_json::to_string(&network).unwrap()
        );
        let response = handle(&state, &post("/v1/plan", &body));
        assert_eq!(response.status, 200);
        let direct = ArrayFlexModel::new(16, 16)
            .unwrap()
            .plan_arrayflex(&network, DepthwiseMapping::default())
            .unwrap();
        assert_eq!(response.body, serde_json::to_string(&direct).unwrap().into_bytes());
    }

    #[test]
    fn plan_rejects_bad_requests_with_structured_errors() {
        let state = state();
        for (body, needle) in [
            (r#"{"rows":8,"cols":8}"#, "missing field `network`"),
            (r#"{"network":"resnet34","cols":8}"#, "missing field `rows`"),
            (r#"{"network":"nope","rows":8,"cols":8}"#, "unknown network"),
            (r#"{"network":7,"rows":8,"cols":8}"#, "`network` must be"),
            (r#"{"network":"resnet34","rows":0,"cols":8}"#, "geometry"),
            (r#"{"network":"resnet34","rows":9999,"cols":8}"#, "geometry"),
            (
                r#"{"network":"resnet34","rows":8,"cols":8,"design":"nope"}"#,
                "`design` must be",
            ),
            (
                r#"{"network":"resnet34","rows":8,"cols":8,"design":{"fixed":77}}"#,
                "hardware model",
            ),
            (
                r#"{"network":"resnet34","rows":8,"cols":8,"mapping":"Sideways"}"#,
                "invalid field `mapping`",
            ),
        ] {
            let response = handle(&state, &post("/v1/plan", body));
            assert_eq!(response.status, 400, "body: {body}");
            let text = String::from_utf8(response.body).unwrap();
            assert!(text.contains(needle), "{text} missing {needle:?}");
            assert!(text.starts_with("{\"error\":{"), "unstructured error: {text}");
        }
    }

    #[test]
    fn sweep_matches_evaluation_sweep_byte_for_byte() {
        let state = state();
        let request = post(
            "/v1/sweep",
            r#"{"array_sizes":[32,64],"networks":["resnet34","mobilenet_v1"],"threads":2}"#,
        );
        let response = handle(&state, &request);
        assert_eq!(response.status, 200);
        let networks = vec![cnn::models::resnet34(), cnn::models::mobilenet_v1()];
        let direct = equivalent_sweep(
            &[32, 64],
            &[Dataflow::WeightStationary],
            DepthwiseMapping::default(),
        )
        .run(&networks)
        .unwrap();
        assert_eq!(response.body, serde_json::to_string(&direct).unwrap().into_bytes());
        // The sweep populated the plan cache: 2 sizes x 2 networks x 2 kinds.
        assert_eq!(state.cache().len(), 8);
        // A follow-up plan request for one of the pairs is a pure cache hit.
        let hits_before = state.cache().hits();
        let plan = handle(
            &state,
            &post("/v1/plan", r#"{"network":"resnet34","rows":32,"cols":32}"#),
        );
        assert_eq!(plan.status, 200);
        assert!(state.cache().hits() > hits_before);
    }

    #[test]
    fn sweep_returns_per_dataflow_results_for_the_same_request() {
        let state = state();
        let request = post(
            "/v1/sweep",
            r#"{"array_sizes":[32],"networks":["resnet34"],"dataflows":["weight_stationary","output_stationary"]}"#,
        );
        let response = handle(&state, &request);
        assert_eq!(response.status, 200);
        // Byte-identical to the library sweep with the same dataflow grid.
        let direct = equivalent_sweep(
            &[32],
            &[Dataflow::WeightStationary, Dataflow::OutputStationary],
            DepthwiseMapping::default(),
        )
        .run(&[cnn::models::resnet34()])
        .unwrap();
        assert_eq!(response.body, serde_json::to_string(&direct).unwrap().into_bytes());
        // Both architectures are reported for the one (size, network) pair,
        // and they genuinely differ in modeled latency.
        let decoded: Vec<NetworkComparison> =
            serde_json::from_str(std::str::from_utf8(&response.body).unwrap()).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].dataflow, Dataflow::WeightStationary);
        assert_eq!(decoded[1].dataflow, Dataflow::OutputStationary);
        assert_ne!(
            decoded[0].conventional.total_time(),
            decoded[1].conventional.total_time()
        );
        // The plan cache keys by dataflow: 1 size x 1 network x 2 dataflows
        // x 2 kinds.
        assert_eq!(state.cache().len(), 4);
        // Omitting `dataflows` is the weight-stationary sweep, so its two
        // plans are pure cache hits from the grid above.
        let hits_before = state.cache().hits();
        let ws_only = handle(
            &state,
            &post("/v1/sweep", r#"{"array_sizes":[32],"networks":["resnet34"]}"#),
        );
        assert_eq!(ws_only.status, 200);
        assert_eq!(state.cache().hits(), hits_before + 2);
        let ws_decoded: Vec<NetworkComparison> =
            serde_json::from_str(std::str::from_utf8(&ws_only.body).unwrap()).unwrap();
        assert_eq!(ws_decoded.len(), 1);
        assert_eq!(ws_decoded[0], decoded[0]);
    }

    #[test]
    fn sweep_rejects_out_of_range_requests() {
        let state = state();
        for (body, needle) in [
            (r#"{"networks":["resnet34"]}"#, "missing field `array_sizes`"),
            (r#"{"array_sizes":[],"networks":["resnet34"]}"#, "array_sizes"),
            (r#"{"array_sizes":[16],"networks":[]}"#, "networks"),
            (r#"{"array_sizes":[16],"networks":"resnet34"}"#, "must be an array"),
            (r#"{"array_sizes":[0],"networks":["resnet34"]}"#, "array size"),
            (
                r#"{"array_sizes":[16],"networks":["resnet34"],"threads":99}"#,
                "`threads`",
            ),
            (
                r#"{"array_sizes":[16],"networks":["resnet34"],"dataflows":[]}"#,
                "`dataflows`",
            ),
            (
                r#"{"array_sizes":[16],"networks":["resnet34"],"dataflows":["sideways"]}"#,
                "invalid field `dataflows`",
            ),
        ] {
            let response = handle(&state, &post("/v1/sweep", body));
            assert_eq!(response.status, 400, "body: {body}");
            let text = String::from_utf8(response.body).unwrap();
            assert!(text.contains(needle), "{text} missing {needle:?}");
        }
    }

    #[test]
    fn response_buffers_learn_their_size_from_the_first_response() {
        let state = state();
        assert_eq!(state.body_estimate(BodyRoute::Plan), 0);
        let request = post("/v1/plan", r#"{"network":"resnet18","rows":32,"cols":32}"#);
        let first = handle(&state, &request);
        assert_eq!(first.status, 200);
        // The running estimate now matches the produced body, so the next
        // response of the route serializes into a buffer pre-sized to it
        // — and the bytes stay identical either way.
        assert_eq!(state.body_estimate(BodyRoute::Plan), first.body.len());
        let second = handle(&state, &request);
        assert_eq!(second.body, first.body);
        assert_eq!(state.body_estimate(BodyRoute::Plan), first.body.len());
    }

    #[test]
    fn simulate_cross_checks_the_analytical_model() {
        let state = state();
        assert!(state.sim_pool().is_empty());
        let response = handle(
            &state,
            &post(
                "/v1/simulate",
                r#"{"rows":8,"cols":8,"k":2,"t":6,"n":20,"m":10,"seed":5}"#,
            ),
        );
        assert_eq!(response.status, 200);
        // The request checked its simulator array back into the pool for
        // the next request of the same geometry.
        assert_eq!(state.sim_pool().len(), 1);
        let decoded: SimulateResponse =
            serde_json::from_str(std::str::from_utf8(&response.body).unwrap()).unwrap();
        assert!(decoded.cycles_match);
        assert!(decoded.functionally_correct);
        assert_eq!(decoded.simulated_cycles, decoded.predicted_cycles);
        assert!(decoded.macs > 0);
        assert!(decoded.tiles > 0);
        // Identical request, identical bytes (the operands are seeded and
        // the pooled simulator array is reset between requests).
        let again = handle(
            &state,
            &post(
                "/v1/simulate",
                r#"{"rows":8,"cols":8,"k":2,"t":6,"n":20,"m":10,"seed":5}"#,
            ),
        );
        assert_eq!(again.body, response.body);
        assert_eq!(state.sim_pool().len(), 1);
    }

    #[test]
    fn simulate_supports_the_output_stationary_dataflow() {
        let state = state();
        let response = handle(
            &state,
            &post(
                "/v1/simulate",
                r#"{"rows":8,"cols":8,"k":2,"t":6,"n":20,"m":10,"seed":5,"dataflow":"output_stationary"}"#,
            ),
        );
        assert_eq!(response.status, 200);
        let decoded: SimulateResponse =
            serde_json::from_str(std::str::from_utf8(&response.body).unwrap()).unwrap();
        assert_eq!(decoded.dataflow, Dataflow::OutputStationary);
        assert!(decoded.cycles_match);
        assert!(decoded.functionally_correct);
        // An invalid dataflow name is a structured 400.
        let bad = handle(
            &state,
            &post(
                "/v1/simulate",
                r#"{"rows":8,"cols":8,"k":2,"t":6,"n":20,"m":10,"dataflow":"sideways"}"#,
            ),
        );
        assert_eq!(bad.status, 400);
        assert!(String::from_utf8(bad.body)
            .unwrap()
            .contains("invalid field `dataflow`"));
    }

    #[test]
    fn simulate_is_size_capped() {
        let state = state();
        for body in [
            r#"{"rows":128,"cols":8,"k":1,"t":4,"n":4,"m":4}"#,
            r#"{"rows":8,"cols":8,"k":1,"t":4096,"n":4096,"m":4096}"#,
            r#"{"rows":8,"cols":8,"k":1,"t":0,"n":4,"m":4}"#,
        ] {
            let response = handle(&state, &post("/v1/simulate", body));
            assert_eq!(response.status, 400, "body: {body}");
        }
    }

    #[test]
    fn unknown_routes_and_methods_are_rejected() {
        let state = state();
        let response = handle(&state, &get("/v2/nothing"));
        assert_eq!(response.status, 404);
        assert!(String::from_utf8(response.body).unwrap().contains("/v2/nothing"));
        let response = handle(&state, &get("/v1/plan"));
        assert_eq!(response.status, 405);
        let response = handle(&state, &post("/healthz", "{}"));
        assert_eq!(response.status, 405);
        assert_eq!(route_label("/v1/plan"), "/v1/plan");
        assert_eq!(route_label("/v2/nothing"), "other");
    }

    #[test]
    fn malformed_json_is_a_structured_400() {
        let response = handle(&state(), &post("/v1/plan", "{not json"));
        assert_eq!(response.status, 400);
        let text = String::from_utf8(response.body).unwrap();
        assert!(text.contains("malformed JSON"), "{text}");
        let response = handle(
            &state(),
            &HttpRequest {
                method: "POST".to_owned(),
                path: "/v1/plan".to_owned(),
                body: vec![0xff, 0xfe],
            },
        );
        assert_eq!(response.status, 400);
        assert!(String::from_utf8(response.body).unwrap().contains("UTF-8"));
    }

    #[test]
    fn metrics_render_after_traffic() {
        let state = state();
        let plan = post("/v1/plan", r#"{"network":"resnet34","rows":16,"cols":16}"#);
        // handle() itself does not record metrics (the connection loop
        // does), so record explicitly like the loop would.
        let response = handle(&state, &plan);
        state
            .metrics()
            .observe(route_label(&plan.path), response.status, std::time::Duration::from_micros(42));
        let rendered = handle(&state, &get("/metrics"));
        assert_eq!(rendered.status, 200);
        let text = String::from_utf8(rendered.body).unwrap();
        assert!(text.contains("arrayflex_serve_requests_total{route=\"/v1/plan\",status=\"200\"} 1"));
        assert!(text.contains("arrayflex_serve_plan_cache_misses_total 1"));
    }
}
