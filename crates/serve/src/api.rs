//! The JSON API of the planning/simulation service.
//!
//! Routes:
//!
//! * `POST /v1/plan` — plan one network on one array geometry; the
//!   response body is **byte-identical** to
//!   `serde_json::to_string(&model.plan_*(...))`, whether it was computed
//!   or served from the plan cache;
//! * `POST /v1/sweep` — an evaluation sweep over array sizes × networks,
//!   fanned out through [`ParallelExecutor`]; byte-identical to
//!   `serde_json::to_string(&EvaluationSweep {..}.run(&networks))`;
//! * `POST /v1/simulate` — a size-capped cycle-accurate cross-check of one
//!   random GEMM against the analytical model;
//! * `POST /v1/jobs`, `GET /v1/jobs/{id}[/result]`, `DELETE
//!   /v1/jobs/{id}` — asynchronous, cancellable, checkpointed sweep jobs
//!   (see the `jobs` module); a completed job's result is byte-identical to
//!   the equivalent `/v1/sweep` response;
//! * `GET /healthz` — liveness;
//! * `GET /metrics` — Prometheus text format (see [`crate::metrics`]).
//!
//! Handlers are pure functions from a parsed [`HttpRequest`] to an
//! [`HttpResponse`] over shared [`AppState`], so the whole API surface is
//! testable without sockets. Long-running handlers (sweep, simulate)
//! observe a per-request [`CancelToken`] between job items: the serving
//! layer arms it with the request deadline and fires it when every
//! waiting client disconnects, and a cancelled handler answers a
//! structured `503` reporting partial progress instead of computing on.

use crate::http::{HttpRequest, HttpResponse, ServerConfig};
use crate::jobs::{JobEntry, JobStore, TenantQuota};
use crate::metrics::Metrics;
use crate::rendered::RenderedCache;
use arrayflex::sa_sim::{ArrayPool, Dataflow};
use arrayflex::{
    ArrayFlexModel, CacheOutcome, EvaluationSweep, NetworkComparison, ParallelExecutor, PlanCache,
    PlanKind,
};
use cnn::{DepthwiseMapping, Network};
use gemm::rng::SplitMix64;
use gemm::{CancelToken, Matrix};
use serde::{Deserialize, Serialize, Value};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Maximum array edge length accepted by `/v1/plan` and `/v1/sweep`.
pub const MAX_ARRAY_EDGE: u32 = 4096;
/// Maximum number of array sizes in one sweep request.
pub const MAX_SWEEP_SIZES: usize = 8;
/// Maximum number of networks in one sweep request.
pub const MAX_SWEEP_NETWORKS: usize = 8;
/// Maximum worker threads a sweep request may ask for.
pub const MAX_SWEEP_THREADS: usize = 16;
/// Maximum array edge length accepted by `/v1/simulate` (the simulator
/// evaluates every PE every cycle, so this is deliberately small).
pub const MAX_SIM_EDGE: u32 = 64;
/// Maximum `T * N * M` product accepted by `/v1/simulate`.
pub const MAX_SIM_MACS: u64 = 1 << 21;

/// Shared state of one server instance.
#[derive(Debug)]
pub struct AppState {
    cache: PlanCache,
    metrics: Metrics,
    max_body_bytes: usize,
    accepted: AtomicU64,
    sim_pool: ArrayPool,
    log_requests: bool,
    /// Rendered-response memo: full `/v1/plan` 200 bodies keyed by raw
    /// request bytes, kept coherent with `cache` (see `crate::rendered`).
    rendered: RenderedCache,
    /// Per-route running estimates (largest response seen so far) used to
    /// pre-size JSON response buffers: `[/v1/plan, /v1/sweep,
    /// /v1/simulate]`. Serialization appends into a
    /// `String::with_capacity(estimate)` instead of growing an empty
    /// buffer through repeated reallocation on every request.
    body_estimates: [AtomicUsize; 3],
    /// Per-request deadline (`ServerConfig::request_deadline`): queued
    /// work older than this is answered 503 without computing.
    request_deadline: Option<std::time::Duration>,
    /// Test-only `POST /__test/panic` route proving panic isolation
    /// (`ServerConfig::panic_route`).
    panic_route: bool,
    /// The `/v1/jobs` store (see [`crate::jobs`]). Job execution needs an
    /// owned `Arc<AppState>`, so submissions only work on states built
    /// through [`AppState::shared`].
    jobs: JobStore,
    /// Per-tenant token-bucket admission, when `ServerConfig::tenant_rate`
    /// is set.
    tenant_quota: Option<TenantQuota>,
    /// Cap on concurrently running jobs per tenant (`0` = uncapped).
    tenant_max_jobs: usize,
}

/// Index into [`AppState`]'s per-route response-size estimates.
#[derive(Debug, Clone, Copy)]
enum BodyRoute {
    Plan = 0,
    Sweep = 1,
    Simulate = 2,
}

/// Ceiling on a per-route response-size estimate. One unusually large
/// response must not pin a multi-megabyte upfront allocation onto every
/// later request of the route; beyond this, `String` growth amortizes
/// fine.
const MAX_BODY_ESTIMATE: usize = 1 << 20;

impl AppState {
    /// Builds the state for one server configuration.
    #[must_use]
    pub fn new(config: &ServerConfig) -> Self {
        let mut cache = PlanCache::builder().capacity(config.cache_capacity);
        if let Some(ttl) = config.cache_ttl {
            cache = cache.ttl(ttl);
        }
        if let Some(max_bytes) = config.cache_max_bytes {
            cache = cache.max_bytes(max_bytes);
        }
        Self {
            cache: cache.build(),
            metrics: Metrics::new(),
            max_body_bytes: config.max_body_bytes,
            accepted: AtomicU64::new(0),
            sim_pool: ArrayPool::new(),
            log_requests: config.log_requests,
            rendered: RenderedCache::default(),
            body_estimates: [
                AtomicUsize::new(0),
                AtomicUsize::new(0),
                AtomicUsize::new(0),
            ],
            request_deadline: config.request_deadline,
            panic_route: config.panic_route,
            jobs: JobStore::new(config.job_dir.clone()),
            tenant_quota: config
                .tenant_rate
                .map(|rate| TenantQuota::new(rate, config.tenant_burst)),
            tenant_max_jobs: config.tenant_max_jobs,
        }
    }

    /// Builds the state wrapped in the `Arc` the `/v1/jobs` runner threads
    /// need, and resumes any incomplete jobs checkpointed in
    /// `ServerConfig::job_dir`. States built with [`AppState::new`] alone
    /// answer job submissions with a `503` (every other route works).
    #[must_use]
    pub fn shared(config: &ServerConfig) -> Arc<Self> {
        let state = Arc::new(Self::new(config));
        state.jobs.attach(&state);
        state.jobs.resume(&state);
        state
    }

    /// Serializes one JSON response body into a buffer pre-sized from the
    /// route's running estimate (the largest response the route has
    /// produced so far, capped at [`MAX_BODY_ESTIMATE`]), then feeds the
    /// observed size back into the estimate. The bytes are identical to
    /// `serde_json::to_string`.
    fn sized_json_body<T: Serialize + ?Sized>(&self, route: BodyRoute, value: &T) -> Vec<u8> {
        let estimate = &self.body_estimates[route as usize];
        let mut body = String::with_capacity(estimate.load(Ordering::Relaxed));
        serde_json::to_string_into(value, &mut body).expect("responses serialize to JSON");
        estimate.fetch_max(body.len().min(MAX_BODY_ESTIMATE), Ordering::Relaxed);
        body.into_bytes()
    }

    /// The plan cache shared by every worker.
    #[must_use]
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// The pool of simulator arrays `/v1/simulate` reuses across requests
    /// (constructing and zero-initializing a
    /// [`SystolicArray`](arrayflex::sa_sim::SystolicArray) per request is
    /// measurable churn under load; results are unchanged). Each pooled
    /// array also owns its west/south staging scratch, so a worker
    /// serving simulate traffic reuses the same staging buffers request
    /// after request instead of allocating them per request.
    #[must_use]
    pub fn sim_pool(&self) -> &ArrayPool {
        &self.sim_pool
    }

    #[cfg(test)]
    fn body_estimate(&self, route: BodyRoute) -> usize {
        self.body_estimates[route as usize].load(Ordering::Relaxed)
    }

    /// The request metrics shared by every worker.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The request-body size cap in bytes.
    #[must_use]
    pub fn max_body_bytes(&self) -> usize {
        self.max_body_bytes
    }

    /// Number of connections the acceptor has handed to the worker pool.
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::SeqCst)
    }

    /// Whether the connection loop emits one structured log line per
    /// served request (see `ServerConfig::log_requests`).
    #[must_use]
    pub fn log_requests(&self) -> bool {
        self.log_requests
    }

    pub(crate) fn note_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::SeqCst);
    }

    /// The configured per-request deadline, if any.
    #[must_use]
    pub fn request_deadline(&self) -> Option<std::time::Duration> {
        self.request_deadline
    }

    /// Looks up a rendered `/v1/plan` body for this exact request body
    /// *ignoring coherence* (generation and TTL): the graceful-degradation
    /// path the event loop uses under shed pressure. The body is still
    /// byte-identical to a fresh computation — planning is a pure function
    /// of the request — but may predate cache churn, so responses served
    /// this way carry the stale flag header.
    pub(crate) fn stale_rendered(&self, request_body: &[u8]) -> Option<std::sync::Arc<Vec<u8>>> {
        self.rendered.lookup_stale(request_body)
    }

    /// The `/v1/jobs` store.
    pub(crate) fn jobs(&self) -> &JobStore {
        &self.jobs
    }

    /// The per-tenant request admission layer, when configured.
    pub(crate) fn tenant_quota(&self) -> Option<&TenantQuota> {
        self.tenant_quota.as_ref()
    }
}

/// The fixed label a request path maps to in the metrics (unknown paths
/// collapse into `"other"` so hostile traffic cannot grow the label set).
#[must_use]
pub fn route_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/metrics" => "/metrics",
        "/v1/plan" => "/v1/plan",
        "/v1/sweep" => "/v1/sweep",
        "/v1/simulate" => "/v1/simulate",
        "/v1/jobs" => "/v1/jobs",
        _ if path.starts_with("/v1/jobs/") => "/v1/jobs",
        _ => "other",
    }
}

/// What the serving layer logs about one handled request beyond its
/// status: the plan-cache interaction, when the route had one.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestTrace {
    /// Cache outcome and key hash of a `/v1/plan` lookup (`None` for
    /// routes that never consulted the cache, or when planning failed
    /// before the lookup).
    pub cache: Option<(CacheOutcome, u64)>,
}

/// Dispatches one parsed request to its handler.
#[must_use]
pub fn handle(state: &AppState, request: &HttpRequest) -> HttpResponse {
    handle_traced(state, request).0
}

/// [`handle`], also reporting the [`RequestTrace`] the connection loop
/// feeds into per-request log lines. The request runs under a fresh
/// cancel token armed with the configured per-request deadline; the
/// event-loop path calls `handle_request` directly with the token it
/// can also fire on client disconnect.
#[must_use]
pub fn handle_traced(state: &AppState, request: &HttpRequest) -> (HttpResponse, RequestTrace) {
    let cancel = CancelToken::with_deadline_opt(
        state
            .request_deadline
            .map(|deadline| std::time::Instant::now() + deadline),
    );
    handle_request(state, request, &cancel, None)
}

/// [`handle_traced`] with the caller-owned cancellation token and the
/// request's tenant (from the `x-arrayflex-tenant` header; `None` means
/// anonymous).
pub(crate) fn handle_request(
    state: &AppState,
    request: &HttpRequest,
    cancel: &CancelToken,
    tenant: Option<&str>,
) -> (HttpResponse, RequestTrace) {
    let mut trace = RequestTrace::default();
    let response = match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => HttpResponse::json(&b"{\"status\":\"ok\"}"[..]),
        ("GET", "/metrics") => {
            HttpResponse::text(state.metrics.render_prometheus(&state.cache).into_bytes())
        }
        ("POST", "/v1/plan") => {
            if let Some((body, hit_trace)) = rendered_plan(state, &request.body) {
                trace = hit_trace;
                HttpResponse::json(body.as_slice().to_vec())
            } else {
                let response = with_json_body(request, |value| plan(state, value, &mut trace));
                if response.status == 200 {
                    if let Some((_, key_hash)) = trace.cache {
                        state.rendered.store(
                            &state.cache,
                            &request.body,
                            key_hash,
                            std::sync::Arc::new(response.body.clone()),
                        );
                    }
                }
                response
            }
        }
        ("POST", "/v1/sweep") => with_json_body(request, |value| sweep(state, value, cancel)),
        ("POST", "/v1/simulate") => {
            with_json_body(request, |value| simulate(state, value, cancel))
        }
        ("POST", "/v1/jobs") => jobs_submit(state, request, tenant),
        ("GET", path) if path.starts_with("/v1/jobs/") => jobs_get(state, path),
        ("DELETE", path) if path.starts_with("/v1/jobs/") => jobs_delete(state, path),
        ("POST", "/__test/panic") if state.panic_route => {
            // Fault-harness escape hatch (ServerConfig::panic_route, tests
            // only): prove a handler panic is caught, answered with a
            // structured 500, and leaves the worker alive.
            panic!("test-injected handler panic")
        }
        (_, "/healthz" | "/metrics" | "/v1/plan" | "/v1/sweep" | "/v1/simulate" | "/v1/jobs") => {
            HttpResponse::error(405, &format!("method {} not allowed here", request.method))
        }
        (_, path) if path.starts_with("/v1/jobs/") => {
            HttpResponse::error(405, &format!("method {} not allowed here", request.method))
        }
        (_, path) => HttpResponse::error(404, &format!("no route for {path}")),
    };
    (response, trace)
}

/// Serves `/v1/plan` from the rendered-response memo when a coherent
/// entry exists for this exact request body (see [`crate::rendered`] for
/// the coherence rules). Returns the shared response bytes and the trace
/// of the hit; `None` falls through to the full planning path.
///
/// The event loop calls this inline — a memo hit never crosses into the
/// worker pool — and [`handle_traced`] calls it too, so the legacy
/// thread-per-connection path and direct API tests stay byte-identical
/// with the fast path.
pub(crate) fn rendered_plan(
    state: &AppState,
    request_body: &[u8],
) -> Option<(std::sync::Arc<Vec<u8>>, RequestTrace)> {
    let (body, key_hash) = state.rendered.lookup(&state.cache, request_body)?;
    state.metrics.note_rendered_hit();
    Some((
        body,
        RequestTrace {
            cache: Some((CacheOutcome::Hit, key_hash)),
        },
    ))
}

/// Parses the body as JSON (rejecting invalid UTF-8 and malformed JSON
/// with a structured 400) before running the handler.
fn with_json_body(
    request: &HttpRequest,
    handler: impl FnOnce(&Value) -> Result<HttpResponse, ApiError>,
) -> HttpResponse {
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return HttpResponse::error(400, "request body is not valid UTF-8"),
    };
    let value: Value = match serde_json::from_str(text) {
        Ok(value) => value,
        Err(e) => return HttpResponse::error(400, &format!("malformed JSON body: {e}")),
    };
    match handler(&value) {
        Ok(response) => response,
        Err(e) => e.into_response(),
    }
}

/// A handler-level failure: an HTTP status and a human-readable message.
pub(crate) struct ApiError {
    status: u16,
    message: String,
}

impl ApiError {
    fn bad_request(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
        }
    }

    /// The structured error response this failure renders to.
    pub(crate) fn into_response(self) -> HttpResponse {
        HttpResponse::error(self.status, &self.message)
    }
}

impl From<arrayflex::ArrayFlexError> for ApiError {
    fn from(e: arrayflex::ArrayFlexError) -> Self {
        // A cancelled run is a server-side abandonment (deadline passed,
        // every waiter disconnected), not a client error: a structured
        // 503 reporting the partial progress — "run cancelled after k/n
        // items: <reason>" — so a retrying client knows the request was
        // valid and how far it got.
        if matches!(e, arrayflex::ArrayFlexError::Cancelled(_)) {
            return Self {
                status: 503,
                message: e.to_string(),
            };
        }
        // Library-level rejections of a well-formed request (bad depth,
        // zero dimension, ...) are client errors, not server faults.
        ApiError::bad_request(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Request decoding helpers
// ---------------------------------------------------------------------------

/// A network referenced by name or provided inline as a full layer table.
#[derive(Debug, Clone)]
pub enum NetworkSpec {
    /// One of the built-in model names (see [`resolve_named_network`]).
    Named(String),
    /// A complete inline network.
    Inline(Network),
}

impl NetworkSpec {
    fn from_value(value: &Value) -> Result<Self, ApiError> {
        match value {
            Value::Str(name) => Ok(Self::Named(name.clone())),
            Value::Object(_) => Network::from_value(value)
                .map(Self::Inline)
                .map_err(|e| ApiError::bad_request(format!("invalid inline network: {e}"))),
            other => Err(ApiError::bad_request(format!(
                "`network` must be a name or an inline network object, found {other:?}"
            ))),
        }
    }

    fn resolve(&self) -> Result<Network, ApiError> {
        match self {
            Self::Named(name) => resolve_named_network(name).ok_or_else(|| {
                ApiError::bad_request(format!(
                    "unknown network \"{name}\" (available: {})",
                    NAMED_NETWORKS.join(", ")
                ))
            }),
            Self::Inline(network) => {
                if network.is_empty() {
                    return Err(ApiError::bad_request("inline network has no layers"));
                }
                Ok(network.clone())
            }
        }
    }
}

/// Names accepted by [`resolve_named_network`].
pub const NAMED_NETWORKS: [&str; 6] = [
    "resnet18",
    "resnet34",
    "resnet50",
    "mobilenet_v1",
    "convnext_tiny",
    "vgg16",
];

/// Looks up one of the built-in layer tables by name.
#[must_use]
pub fn resolve_named_network(name: &str) -> Option<Network> {
    match name {
        "resnet18" => Some(cnn::models::resnet18()),
        "resnet34" => Some(cnn::models::resnet34()),
        "resnet50" => Some(cnn::models::resnet50()),
        "mobilenet_v1" => Some(cnn::models::mobilenet_v1()),
        "convnext_tiny" => Some(cnn::models::convnext_tiny()),
        "vgg16" => Some(cnn::models::vgg16()),
        _ => None,
    }
}

fn required<'v>(value: &'v Value, field: &str) -> Result<&'v Value, ApiError> {
    value
        .get(field)
        .ok_or_else(|| ApiError::bad_request(format!("missing field `{field}`")))
}

fn decode<T: Deserialize>(value: &Value, field: &str) -> Result<T, ApiError> {
    T::from_value(required(value, field)?)
        .map_err(|e| ApiError::bad_request(format!("invalid field `{field}`: {e}")))
}

fn decode_optional<T: Deserialize>(value: &Value, field: &str) -> Result<Option<T>, ApiError> {
    match value.get(field) {
        None | Some(Value::Null) => Ok(None),
        Some(present) => T::from_value(present)
            .map(Some)
            .map_err(|e| ApiError::bad_request(format!("invalid field `{field}`: {e}"))),
    }
}

fn decode_mapping(value: &Value) -> Result<DepthwiseMapping, ApiError> {
    Ok(decode_optional::<DepthwiseMapping>(value, "mapping")?.unwrap_or_default())
}

/// Decodes the optional `dataflow` field of a simulate request:
/// `"weight_stationary"` (the default) or `"output_stationary"`.
fn decode_dataflow(value: &Value) -> Result<Dataflow, ApiError> {
    Ok(decode_optional::<Dataflow>(value, "dataflow")?.unwrap_or_default())
}

/// Decodes the optional `dataflows` field of a sweep request: a non-empty
/// list of dataflow names, defaulting to the paper's weight-stationary
/// architecture.
fn decode_dataflows(value: &Value) -> Result<Vec<Dataflow>, ApiError> {
    match decode_optional::<Vec<Dataflow>>(value, "dataflows")? {
        None => Ok(vec![Dataflow::WeightStationary]),
        Some(dataflows) if dataflows.is_empty() => Err(ApiError::bad_request(
            "`dataflows` must list at least one dataflow",
        )),
        Some(dataflows) if dataflows.len() > Dataflow::ALL.len() => Err(ApiError::bad_request(
            format!("`dataflows` must list at most {} dataflows", Dataflow::ALL.len()),
        )),
        Some(dataflows) => Ok(dataflows),
    }
}

/// Decodes the optional `design` field of a plan request:
/// `"arrayflex"` (default), `"conventional"`, or `{"fixed": k}`.
fn decode_plan_kind(value: &Value) -> Result<PlanKind, ApiError> {
    match value.get("design") {
        None | Some(Value::Null) => Ok(PlanKind::ArrayFlex),
        Some(Value::Str(s)) if s == "arrayflex" => Ok(PlanKind::ArrayFlex),
        Some(Value::Str(s)) if s == "conventional" => Ok(PlanKind::Conventional),
        Some(other) => {
            if let Some(k_value) = other.get("fixed") {
                let k = u32::from_value(k_value).map_err(|e| {
                    ApiError::bad_request(format!("invalid field `design.fixed`: {e}"))
                })?;
                return Ok(PlanKind::Fixed(k));
            }
            Err(ApiError::bad_request(
                "`design` must be \"arrayflex\", \"conventional\" or {\"fixed\": k}",
            ))
        }
    }
}

fn validated_geometry(rows: u32, cols: u32) -> Result<ArrayFlexModel, ApiError> {
    if rows == 0 || cols == 0 || rows > MAX_ARRAY_EDGE || cols > MAX_ARRAY_EDGE {
        return Err(ApiError::bad_request(format!(
            "array geometry {rows}x{cols} outside the supported 1..={MAX_ARRAY_EDGE} range"
        )));
    }
    Ok(ArrayFlexModel::new(rows, cols)?)
}

// ---------------------------------------------------------------------------
// POST /v1/plan
// ---------------------------------------------------------------------------

fn plan(
    state: &AppState,
    value: &Value,
    trace: &mut RequestTrace,
) -> Result<HttpResponse, ApiError> {
    let network = NetworkSpec::from_value(required(value, "network")?)?.resolve()?;
    let rows: u32 = decode(value, "rows")?;
    let cols: u32 = decode(value, "cols")?;
    let mapping = decode_mapping(value)?;
    let kind = decode_plan_kind(value)?;
    let model = validated_geometry(rows, cols)?;
    let (plan, outcome, key_hash) =
        model.plan_cached_traced(&state.cache, &network, mapping, kind)?;
    trace.cache = Some((outcome, key_hash));
    Ok(HttpResponse::json(state.sized_json_body(BodyRoute::Plan, &*plan)))
}

// ---------------------------------------------------------------------------
// POST /v1/sweep
// ---------------------------------------------------------------------------

/// One fully decoded and validated sweep request: the shared shape of
/// `POST /v1/sweep` (synchronous) and `POST /v1/jobs` (asynchronous,
/// checkpointed). The sweep decomposes into `sizes × networks ×
/// dataflows` **points**, each producing one [`NetworkComparison`]; both
/// paths serialize points independently and join the fragments, so their
/// bodies are byte-identical for the same request.
pub(crate) struct SweepSpec {
    sizes: Vec<u32>,
    networks: Vec<Network>,
    mapping: DepthwiseMapping,
    dataflows: Vec<Dataflow>,
    threads: usize,
}

impl SweepSpec {
    /// Number of `(size, network, dataflow)` points the sweep covers.
    pub(crate) fn points(&self) -> usize {
        self.sizes.len() * self.networks.len() * self.dataflows.len()
    }
}

/// Decodes and validates one sweep request body.
pub(crate) fn decode_sweep(value: &Value) -> Result<SweepSpec, ApiError> {
    let sizes: Vec<u32> = decode(value, "array_sizes")?;
    if sizes.is_empty() || sizes.len() > MAX_SWEEP_SIZES {
        return Err(ApiError::bad_request(format!(
            "`array_sizes` must list 1..={MAX_SWEEP_SIZES} sizes"
        )));
    }
    if let Some(&bad) = sizes.iter().find(|&&s| s == 0 || s > MAX_ARRAY_EDGE) {
        return Err(ApiError::bad_request(format!(
            "array size {bad} outside the supported 1..={MAX_ARRAY_EDGE} range"
        )));
    }
    let specs = match required(value, "networks")? {
        Value::Array(items) => items
            .iter()
            .map(NetworkSpec::from_value)
            .collect::<Result<Vec<_>, _>>()?,
        other => {
            return Err(ApiError::bad_request(format!(
                "`networks` must be an array, found {other:?}"
            )))
        }
    };
    if specs.is_empty() || specs.len() > MAX_SWEEP_NETWORKS {
        return Err(ApiError::bad_request(format!(
            "`networks` must list 1..={MAX_SWEEP_NETWORKS} networks"
        )));
    }
    let networks = specs
        .iter()
        .map(NetworkSpec::resolve)
        .collect::<Result<Vec<_>, _>>()?;
    let mapping = decode_mapping(value)?;
    let dataflows = decode_dataflows(value)?;
    let threads = decode_optional::<usize>(value, "threads")?.unwrap_or(1);
    if threads > MAX_SWEEP_THREADS {
        return Err(ApiError::bad_request(format!(
            "`threads` must be 0..={MAX_SWEEP_THREADS}"
        )));
    }
    // `0` auto-detects the hardware parallelism; cap the detected value
    // too, so no request can spawn more than MAX_SWEEP_THREADS workers on
    // a many-core host.
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .min(MAX_SWEEP_THREADS)
    } else {
        threads
    };
    Ok(SweepSpec {
        sizes,
        networks,
        mapping,
        dataflows,
        threads,
    })
}

/// [`decode_sweep`] from raw request text: the shape the `/v1/jobs`
/// runner re-derives a resumed job's point list from.
pub(crate) fn decode_sweep_text(text: &str) -> Result<SweepSpec, String> {
    let value: Value =
        serde_json::from_str(text).map_err(|e| format!("malformed JSON body: {e}"))?;
    decode_sweep(&value).map_err(|e| e.message)
}

/// Computes one sweep point — the `index`-th `(size, network, dataflow)`
/// triple in sweep order — and serializes its [`NetworkComparison`] to
/// the exact fragment a full sweep response would contain at that
/// position. Joining the fragments with `,` inside `[` `]` reproduces
/// `serde_json::to_string(&Vec<NetworkComparison>)` byte for byte, which
/// is what makes a resumed job's result identical to an uninterrupted
/// run.
pub(crate) fn sweep_point_fragment(
    state: &AppState,
    spec: &SweepSpec,
    index: usize,
) -> Result<String, arrayflex::ArrayFlexError> {
    let per_size = spec.networks.len() * spec.dataflows.len();
    let size = spec.sizes[index / per_size];
    let network = &spec.networks[(index % per_size) / spec.dataflows.len()];
    let dataflow = spec.dataflows[index % spec.dataflows.len()];
    let model = ArrayFlexModel::new(size, size)?.with_dataflow(dataflow);
    let conventional =
        model.plan_cached(&state.cache, network, spec.mapping, PlanKind::Conventional)?;
    let proposed = model.plan_cached(&state.cache, network, spec.mapping, PlanKind::ArrayFlex)?;
    let comparison = NetworkComparison::from_plans_for(
        dataflow,
        (*conventional).clone(),
        (*proposed).clone(),
    );
    Ok(serde_json::to_string(&comparison).expect("comparisons serialize to JSON"))
}

fn sweep(state: &AppState, value: &Value, cancel: &CancelToken) -> Result<HttpResponse, ApiError> {
    let spec = decode_sweep(value)?;
    // Fan the (size x network x dataflow x pipeline choice) plan jobs out
    // through the executor, serving each one from the shared plan cache.
    // Re-pairing in submission order reproduces `EvaluationSweep::run`
    // byte for byte. The cancel token is observed between plan jobs, so
    // an abandoned sweep stops within one job item.
    let executor = ParallelExecutor::new(spec.threads);
    let mut jobs =
        Vec::with_capacity(spec.sizes.len() * spec.networks.len() * spec.dataflows.len() * 2);
    for &size in &spec.sizes {
        for network in &spec.networks {
            for &dataflow in &spec.dataflows {
                jobs.push((size, network, dataflow, PlanKind::Conventional));
                jobs.push((size, network, dataflow, PlanKind::ArrayFlex));
            }
        }
    }
    let plans = executor.try_run_cancellable(jobs, cancel, |(size, network, dataflow, kind)| {
        let model = ArrayFlexModel::new(size, size)?.with_dataflow(dataflow);
        model
            .plan_cached(&state.cache, network, spec.mapping, kind)
            .map(|plan| (dataflow, plan))
    })?;
    let mut comparisons = Vec::with_capacity(plans.len() / 2);
    let mut plans = plans.into_iter();
    while let (Some((dataflow, conventional)), Some((_, proposed))) = (plans.next(), plans.next())
    {
        comparisons.push(NetworkComparison::from_plans_for(
            dataflow,
            (*conventional).clone(),
            (*proposed).clone(),
        ));
    }
    Ok(HttpResponse::json(
        state.sized_json_body(BodyRoute::Sweep, &comparisons),
    ))
}

// ---------------------------------------------------------------------------
// /v1/jobs
// ---------------------------------------------------------------------------

/// The status document of one job, also used (with a 202) as the
/// submission response.
fn job_status_response(entry: &JobEntry) -> HttpResponse {
    let (status, completed, total, error) = entry.snapshot();
    let mut fields = vec![
        ("id".to_owned(), Value::Str(entry.id().to_owned())),
        ("tenant".to_owned(), Value::Str(entry.tenant().to_owned())),
        ("status".to_owned(), Value::Str(status.as_str().to_owned())),
        ("points".to_owned(), Value::UInt(total as u64)),
        ("completed".to_owned(), Value::UInt(completed as u64)),
    ];
    if !error.is_empty() {
        fields.push(("error".to_owned(), Value::Str(error)));
    }
    let body = serde_json::to_string(&Value::Object(fields)).expect("status serializes to JSON");
    HttpResponse::json(body.into_bytes())
}

/// `POST /v1/jobs`: validates the sweep body, admits it against the
/// tenant's active-job cap, and spawns the checkpointed runner. Answers
/// `202 Accepted` with the job's status document.
fn jobs_submit(state: &AppState, request: &HttpRequest, tenant: Option<&str>) -> HttpResponse {
    let tenant = tenant.unwrap_or("anonymous");
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return HttpResponse::error(400, "request body is not valid UTF-8"),
    };
    let value: Value = match serde_json::from_str(text) {
        Ok(value) => value,
        Err(e) => return HttpResponse::error(400, &format!("malformed JSON body: {e}")),
    };
    let spec = match decode_sweep(&value) {
        Ok(spec) => spec,
        Err(e) => return e.into_response(),
    };
    let cap = state.tenant_max_jobs;
    if cap != 0 && state.jobs.active_for(tenant) >= cap {
        state.metrics.note_tenant_shed(tenant);
        return HttpResponse::error(
            429,
            &format!("tenant {tenant} already has {cap} active jobs; retry after one completes"),
        );
    }
    match state.jobs.submit(tenant, text.to_owned(), spec.points()) {
        Ok(entry) => {
            state.metrics.note_job_submitted();
            state.metrics.note_job_started(tenant);
            let mut response = job_status_response(&entry);
            response.status = 202;
            response
        }
        Err(message) => HttpResponse::error(503, message),
    }
}

/// `GET /v1/jobs/{id}` (status document) and `GET /v1/jobs/{id}/result`
/// (the completed sweep body, byte-identical to `/v1/sweep`; `409` while
/// the job is running or after cancellation, `500` after a failure).
fn jobs_get(state: &AppState, path: &str) -> HttpResponse {
    let rest = &path["/v1/jobs/".len()..];
    let (id, want_result) = match rest.strip_suffix("/result") {
        Some(id) => (id, true),
        None => (rest, false),
    };
    let Some(entry) = state.jobs.get(id) else {
        return HttpResponse::error(404, &format!("no job {id}"));
    };
    if !want_result {
        return job_status_response(&entry);
    }
    match entry.result() {
        Some(body) => HttpResponse::json(body),
        None => {
            let (status, completed, total, error) = entry.snapshot();
            match status.as_str() {
                "running" => HttpResponse::error(
                    409,
                    &format!("job {id} still running ({completed}/{total} points)"),
                ),
                "cancelled" => HttpResponse::error(
                    409,
                    &format!("job {id} was cancelled after {completed}/{total} points"),
                ),
                _ => HttpResponse::error(500, &format!("job {id} failed: {error}")),
            }
        }
    }
}

/// `DELETE /v1/jobs/{id}`: cooperative cancellation. The job's token
/// fires immediately; its runner acknowledges at the next point boundary
/// and checkpoints the terminal state. Deleting a terminal job is a
/// no-op returning its current status.
fn jobs_delete(state: &AppState, path: &str) -> HttpResponse {
    let id = &path["/v1/jobs/".len()..];
    let Some(entry) = state.jobs.get(id) else {
        return HttpResponse::error(404, &format!("no job {id}"));
    };
    entry.cancel_by_client();
    job_status_response(&entry)
}

/// The `EvaluationSweep` a sweep request is equivalent to (used by tests to
/// assert byte-identical responses).
#[must_use]
pub fn equivalent_sweep(
    sizes: &[u32],
    dataflows: &[Dataflow],
    mapping: DepthwiseMapping,
) -> EvaluationSweep {
    EvaluationSweep {
        array_sizes: sizes.to_vec(),
        dataflows: dataflows.to_vec(),
        mapping,
        threads: 1,
    }
}

// ---------------------------------------------------------------------------
// POST /v1/simulate
// ---------------------------------------------------------------------------

/// Response of `POST /v1/simulate`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimulateResponse {
    /// Array rows simulated.
    pub rows: u32,
    /// Array columns simulated.
    pub cols: u32,
    /// Pipeline collapsing depth.
    pub k: u32,
    /// Dataflow the array executed.
    pub dataflow: Dataflow,
    /// Streaming dimension of the random GEMM.
    pub t: u64,
    /// Reduction dimension of the random GEMM.
    pub n: u64,
    /// Output dimension of the random GEMM.
    pub m: u64,
    /// Seed the operands were generated from.
    pub seed: u64,
    /// Cycles measured by the register-level simulation.
    pub simulated_cycles: u64,
    /// Cycles predicted by Equations (1)-(4).
    pub predicted_cycles: u64,
    /// Whether the two cycle counts agree.
    pub cycles_match: bool,
    /// Whether the simulated product matched the reference GEMM.
    pub functionally_correct: bool,
    /// Useful multiply-accumulates the simulator counted.
    pub macs: u64,
    /// Array-sized tiles the GEMM decomposed into.
    pub tiles: u64,
}

/// One fully decoded and validated `/v1/simulate` request. Extracted from
/// the handler so the admission layer's gather window can decode requests
/// up front, group them by [`SimRequest::batch_key`] and run a whole batch
/// through `ParallelExecutor` — while the plain handler path stays the
/// composition of the same two steps, keeping responses byte-identical
/// whether a request was batched or not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct SimRequest {
    rows: u32,
    cols: u32,
    k: u32,
    t: u64,
    n: u64,
    m: u64,
    seed: u64,
    dataflow: Dataflow,
}

impl SimRequest {
    /// Requests sharing this key simulate the same array configuration,
    /// so one batch can reuse one pooled-array working set.
    pub(crate) fn batch_key(self) -> (u32, u32, u32, Dataflow) {
        (self.rows, self.cols, self.k, self.dataflow)
    }
}

/// Decodes and validates one simulate request body.
pub(crate) fn decode_simulate(value: &Value) -> Result<SimRequest, ApiError> {
    let rows: u32 = decode(value, "rows")?;
    let cols: u32 = decode(value, "cols")?;
    let k: u32 = decode(value, "k")?;
    let t: u64 = decode(value, "t")?;
    let n: u64 = decode(value, "n")?;
    let m: u64 = decode(value, "m")?;
    let seed = decode_optional::<u64>(value, "seed")?.unwrap_or(0);
    let dataflow = decode_dataflow(value)?;
    if rows == 0 || cols == 0 || rows > MAX_SIM_EDGE || cols > MAX_SIM_EDGE {
        return Err(ApiError::bad_request(format!(
            "simulated array {rows}x{cols} outside the supported 1..={MAX_SIM_EDGE} range"
        )));
    }
    if t == 0 || n == 0 || m == 0 {
        return Err(ApiError::bad_request("GEMM dimensions must be non-zero"));
    }
    let macs = t.saturating_mul(n).saturating_mul(m);
    if macs > MAX_SIM_MACS {
        return Err(ApiError::bad_request(format!(
            "GEMM of {macs} MACs exceeds the cycle-accurate limit of {MAX_SIM_MACS}"
        )));
    }
    Ok(SimRequest {
        rows,
        cols,
        k,
        t,
        n,
        m,
        seed,
        dataflow,
    })
}

/// Runs one validated simulate request to its success response. The
/// cancel token is observed between simulated tiles, so an abandoned
/// simulation stops within one tile (and its pooled array is still
/// checked back in).
pub(crate) fn run_simulate(
    state: &AppState,
    req: SimRequest,
    cancel: &CancelToken,
) -> Result<HttpResponse, ApiError> {
    let model = ArrayFlexModel::new(req.rows, req.cols)?.with_dataflow(req.dataflow);
    let mut rng = SplitMix64::new(req.seed);
    let a = Matrix::random(req.t as usize, req.n as usize, &mut rng, -64, 63);
    let b = Matrix::random(req.n as usize, req.m as usize, &mut rng, -64, 63);
    let result = model.simulate_gemm_cancellable(state.sim_pool(), &a, &b, req.k, 1, cancel)?;
    let response = SimulateResponse {
        rows: req.rows,
        cols: req.cols,
        k: req.k,
        dataflow: req.dataflow,
        t: req.t,
        n: req.n,
        m: req.m,
        seed: req.seed,
        simulated_cycles: result.stats.total_cycles(),
        predicted_cycles: result.predicted.cycles,
        cycles_match: result.cycles_match(),
        functionally_correct: result.functionally_correct,
        macs: result.stats.macs,
        tiles: result.stats.tiles,
    };
    Ok(HttpResponse::json(
        state.sized_json_body(BodyRoute::Simulate, &response),
    ))
}

/// [`run_simulate`] with errors rendered to their wire responses (the
/// shape batch workers need).
pub(crate) fn simulate_response(
    state: &AppState,
    req: SimRequest,
    cancel: &CancelToken,
) -> HttpResponse {
    run_simulate(state, req, cancel).unwrap_or_else(ApiError::into_response)
}

fn simulate(state: &AppState, value: &Value, cancel: &CancelToken) -> Result<HttpResponse, ApiError> {
    run_simulate(state, decode_simulate(value)?, cancel)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> AppState {
        AppState::new(&ServerConfig::default())
    }

    fn post(path: &str, body: &str) -> HttpRequest {
        HttpRequest {
            method: "POST".to_owned(),
            path: path.to_owned(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn get(path: &str) -> HttpRequest {
        HttpRequest {
            method: "GET".to_owned(),
            path: path.to_owned(),
            body: Vec::new(),
        }
    }

    #[test]
    fn healthz_is_ok() {
        let response = handle(&state(), &get("/healthz"));
        assert_eq!(response.status, 200);
        assert_eq!(response.body, b"{\"status\":\"ok\"}");
    }

    #[test]
    fn plan_matches_the_direct_library_call_byte_for_byte() {
        let state = state();
        let request = post("/v1/plan", r#"{"network":"resnet34","rows":64,"cols":64}"#);
        let response = handle(&state, &request);
        assert_eq!(response.status, 200);
        let model = ArrayFlexModel::new(64, 64).unwrap();
        let direct = model
            .plan_arrayflex(&cnn::models::resnet34(), DepthwiseMapping::default())
            .unwrap();
        assert_eq!(response.body, serde_json::to_string(&direct).unwrap().into_bytes());
        // The repeated request is served from the cache, byte-identically.
        let again = handle(&state, &request);
        assert_eq!(again.body, response.body);
        assert_eq!(state.cache().hits(), 1);
    }

    #[test]
    fn plan_supports_conventional_fixed_and_mapping() {
        let state = state();
        let model = ArrayFlexModel::new(32, 32).unwrap();
        let net = cnn::models::mobilenet_v1();

        let conventional = handle(
            &state,
            &post(
                "/v1/plan",
                r#"{"network":"mobilenet_v1","rows":32,"cols":32,"design":"conventional"}"#,
            ),
        );
        assert_eq!(conventional.status, 200);
        let direct = model.plan_conventional(&net, DepthwiseMapping::default()).unwrap();
        assert_eq!(conventional.body, serde_json::to_string(&direct).unwrap().into_bytes());

        let fixed = handle(
            &state,
            &post(
                "/v1/plan",
                r#"{"network":"mobilenet_v1","rows":32,"cols":32,"design":{"fixed":2},"mapping":"PerGroup"}"#,
            ),
        );
        assert_eq!(fixed.status, 200);
        let direct = model
            .plan_arrayflex_fixed(&net, DepthwiseMapping::PerGroup, 2)
            .unwrap();
        assert_eq!(fixed.body, serde_json::to_string(&direct).unwrap().into_bytes());
    }

    #[test]
    fn plan_accepts_an_inline_network() {
        let state = state();
        let network = cnn::models::synthetic_cnn(2, 8, 16);
        let body = format!(
            r#"{{"network":{},"rows":16,"cols":16}}"#,
            serde_json::to_string(&network).unwrap()
        );
        let response = handle(&state, &post("/v1/plan", &body));
        assert_eq!(response.status, 200);
        let direct = ArrayFlexModel::new(16, 16)
            .unwrap()
            .plan_arrayflex(&network, DepthwiseMapping::default())
            .unwrap();
        assert_eq!(response.body, serde_json::to_string(&direct).unwrap().into_bytes());
    }

    #[test]
    fn plan_rejects_bad_requests_with_structured_errors() {
        let state = state();
        for (body, needle) in [
            (r#"{"rows":8,"cols":8}"#, "missing field `network`"),
            (r#"{"network":"resnet34","cols":8}"#, "missing field `rows`"),
            (r#"{"network":"nope","rows":8,"cols":8}"#, "unknown network"),
            (r#"{"network":7,"rows":8,"cols":8}"#, "`network` must be"),
            (r#"{"network":"resnet34","rows":0,"cols":8}"#, "geometry"),
            (r#"{"network":"resnet34","rows":9999,"cols":8}"#, "geometry"),
            (
                r#"{"network":"resnet34","rows":8,"cols":8,"design":"nope"}"#,
                "`design` must be",
            ),
            (
                r#"{"network":"resnet34","rows":8,"cols":8,"design":{"fixed":77}}"#,
                "hardware model",
            ),
            (
                r#"{"network":"resnet34","rows":8,"cols":8,"mapping":"Sideways"}"#,
                "invalid field `mapping`",
            ),
        ] {
            let response = handle(&state, &post("/v1/plan", body));
            assert_eq!(response.status, 400, "body: {body}");
            let text = String::from_utf8(response.body).unwrap();
            assert!(text.contains(needle), "{text} missing {needle:?}");
            assert!(text.starts_with("{\"error\":{"), "unstructured error: {text}");
        }
    }

    #[test]
    fn sweep_matches_evaluation_sweep_byte_for_byte() {
        let state = state();
        let request = post(
            "/v1/sweep",
            r#"{"array_sizes":[32,64],"networks":["resnet34","mobilenet_v1"],"threads":2}"#,
        );
        let response = handle(&state, &request);
        assert_eq!(response.status, 200);
        let networks = vec![cnn::models::resnet34(), cnn::models::mobilenet_v1()];
        let direct = equivalent_sweep(
            &[32, 64],
            &[Dataflow::WeightStationary],
            DepthwiseMapping::default(),
        )
        .run(&networks)
        .unwrap();
        assert_eq!(response.body, serde_json::to_string(&direct).unwrap().into_bytes());
        // The sweep populated the plan cache: 2 sizes x 2 networks x 2 kinds.
        assert_eq!(state.cache().len(), 8);
        // A follow-up plan request for one of the pairs is a pure cache hit.
        let hits_before = state.cache().hits();
        let plan = handle(
            &state,
            &post("/v1/plan", r#"{"network":"resnet34","rows":32,"cols":32}"#),
        );
        assert_eq!(plan.status, 200);
        assert!(state.cache().hits() > hits_before);
    }

    #[test]
    fn sweep_returns_per_dataflow_results_for_the_same_request() {
        let state = state();
        let request = post(
            "/v1/sweep",
            r#"{"array_sizes":[32],"networks":["resnet34"],"dataflows":["weight_stationary","output_stationary"]}"#,
        );
        let response = handle(&state, &request);
        assert_eq!(response.status, 200);
        // Byte-identical to the library sweep with the same dataflow grid.
        let direct = equivalent_sweep(
            &[32],
            &[Dataflow::WeightStationary, Dataflow::OutputStationary],
            DepthwiseMapping::default(),
        )
        .run(&[cnn::models::resnet34()])
        .unwrap();
        assert_eq!(response.body, serde_json::to_string(&direct).unwrap().into_bytes());
        // Both architectures are reported for the one (size, network) pair,
        // and they genuinely differ in modeled latency.
        let decoded: Vec<NetworkComparison> =
            serde_json::from_str(std::str::from_utf8(&response.body).unwrap()).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].dataflow, Dataflow::WeightStationary);
        assert_eq!(decoded[1].dataflow, Dataflow::OutputStationary);
        assert_ne!(
            decoded[0].conventional.total_time(),
            decoded[1].conventional.total_time()
        );
        // The plan cache keys by dataflow: 1 size x 1 network x 2 dataflows
        // x 2 kinds.
        assert_eq!(state.cache().len(), 4);
        // Omitting `dataflows` is the weight-stationary sweep, so its two
        // plans are pure cache hits from the grid above.
        let hits_before = state.cache().hits();
        let ws_only = handle(
            &state,
            &post("/v1/sweep", r#"{"array_sizes":[32],"networks":["resnet34"]}"#),
        );
        assert_eq!(ws_only.status, 200);
        assert_eq!(state.cache().hits(), hits_before + 2);
        let ws_decoded: Vec<NetworkComparison> =
            serde_json::from_str(std::str::from_utf8(&ws_only.body).unwrap()).unwrap();
        assert_eq!(ws_decoded.len(), 1);
        assert_eq!(ws_decoded[0], decoded[0]);
    }

    #[test]
    fn sweep_rejects_out_of_range_requests() {
        let state = state();
        for (body, needle) in [
            (r#"{"networks":["resnet34"]}"#, "missing field `array_sizes`"),
            (r#"{"array_sizes":[],"networks":["resnet34"]}"#, "array_sizes"),
            (r#"{"array_sizes":[16],"networks":[]}"#, "networks"),
            (r#"{"array_sizes":[16],"networks":"resnet34"}"#, "must be an array"),
            (r#"{"array_sizes":[0],"networks":["resnet34"]}"#, "array size"),
            (
                r#"{"array_sizes":[16],"networks":["resnet34"],"threads":99}"#,
                "`threads`",
            ),
            (
                r#"{"array_sizes":[16],"networks":["resnet34"],"dataflows":[]}"#,
                "`dataflows`",
            ),
            (
                r#"{"array_sizes":[16],"networks":["resnet34"],"dataflows":["sideways"]}"#,
                "invalid field `dataflows`",
            ),
        ] {
            let response = handle(&state, &post("/v1/sweep", body));
            assert_eq!(response.status, 400, "body: {body}");
            let text = String::from_utf8(response.body).unwrap();
            assert!(text.contains(needle), "{text} missing {needle:?}");
        }
    }

    #[test]
    fn response_buffers_learn_their_size_from_the_first_response() {
        let state = state();
        assert_eq!(state.body_estimate(BodyRoute::Plan), 0);
        let request = post("/v1/plan", r#"{"network":"resnet18","rows":32,"cols":32}"#);
        let first = handle(&state, &request);
        assert_eq!(first.status, 200);
        // The running estimate now matches the produced body, so the next
        // response of the route serializes into a buffer pre-sized to it
        // — and the bytes stay identical either way.
        assert_eq!(state.body_estimate(BodyRoute::Plan), first.body.len());
        let second = handle(&state, &request);
        assert_eq!(second.body, first.body);
        assert_eq!(state.body_estimate(BodyRoute::Plan), first.body.len());
    }

    #[test]
    fn simulate_cross_checks_the_analytical_model() {
        let state = state();
        assert!(state.sim_pool().is_empty());
        let response = handle(
            &state,
            &post(
                "/v1/simulate",
                r#"{"rows":8,"cols":8,"k":2,"t":6,"n":20,"m":10,"seed":5}"#,
            ),
        );
        assert_eq!(response.status, 200);
        // The request checked its simulator array back into the pool for
        // the next request of the same geometry.
        assert_eq!(state.sim_pool().len(), 1);
        let decoded: SimulateResponse =
            serde_json::from_str(std::str::from_utf8(&response.body).unwrap()).unwrap();
        assert!(decoded.cycles_match);
        assert!(decoded.functionally_correct);
        assert_eq!(decoded.simulated_cycles, decoded.predicted_cycles);
        assert!(decoded.macs > 0);
        assert!(decoded.tiles > 0);
        // Identical request, identical bytes (the operands are seeded and
        // the pooled simulator array is reset between requests).
        let again = handle(
            &state,
            &post(
                "/v1/simulate",
                r#"{"rows":8,"cols":8,"k":2,"t":6,"n":20,"m":10,"seed":5}"#,
            ),
        );
        assert_eq!(again.body, response.body);
        assert_eq!(state.sim_pool().len(), 1);
    }

    #[test]
    fn simulate_supports_the_output_stationary_dataflow() {
        let state = state();
        let response = handle(
            &state,
            &post(
                "/v1/simulate",
                r#"{"rows":8,"cols":8,"k":2,"t":6,"n":20,"m":10,"seed":5,"dataflow":"output_stationary"}"#,
            ),
        );
        assert_eq!(response.status, 200);
        let decoded: SimulateResponse =
            serde_json::from_str(std::str::from_utf8(&response.body).unwrap()).unwrap();
        assert_eq!(decoded.dataflow, Dataflow::OutputStationary);
        assert!(decoded.cycles_match);
        assert!(decoded.functionally_correct);
        // An invalid dataflow name is a structured 400.
        let bad = handle(
            &state,
            &post(
                "/v1/simulate",
                r#"{"rows":8,"cols":8,"k":2,"t":6,"n":20,"m":10,"dataflow":"sideways"}"#,
            ),
        );
        assert_eq!(bad.status, 400);
        assert!(String::from_utf8(bad.body)
            .unwrap()
            .contains("invalid field `dataflow`"));
    }

    #[test]
    fn simulate_is_size_capped() {
        let state = state();
        for body in [
            r#"{"rows":128,"cols":8,"k":1,"t":4,"n":4,"m":4}"#,
            r#"{"rows":8,"cols":8,"k":1,"t":4096,"n":4096,"m":4096}"#,
            r#"{"rows":8,"cols":8,"k":1,"t":0,"n":4,"m":4}"#,
        ] {
            let response = handle(&state, &post("/v1/simulate", body));
            assert_eq!(response.status, 400, "body: {body}");
        }
    }

    #[test]
    fn unknown_routes_and_methods_are_rejected() {
        let state = state();
        let response = handle(&state, &get("/v2/nothing"));
        assert_eq!(response.status, 404);
        assert!(String::from_utf8(response.body).unwrap().contains("/v2/nothing"));
        let response = handle(&state, &get("/v1/plan"));
        assert_eq!(response.status, 405);
        let response = handle(&state, &post("/healthz", "{}"));
        assert_eq!(response.status, 405);
        assert_eq!(route_label("/v1/plan"), "/v1/plan");
        assert_eq!(route_label("/v2/nothing"), "other");
    }

    #[test]
    fn malformed_json_is_a_structured_400() {
        let response = handle(&state(), &post("/v1/plan", "{not json"));
        assert_eq!(response.status, 400);
        let text = String::from_utf8(response.body).unwrap();
        assert!(text.contains("malformed JSON"), "{text}");
        let response = handle(
            &state(),
            &HttpRequest {
                method: "POST".to_owned(),
                path: "/v1/plan".to_owned(),
                body: vec![0xff, 0xfe],
            },
        );
        assert_eq!(response.status, 400);
        assert!(String::from_utf8(response.body).unwrap().contains("UTF-8"));
    }

    fn request(method: &str, path: &str) -> HttpRequest {
        HttpRequest {
            method: method.to_owned(),
            path: path.to_owned(),
            body: Vec::new(),
        }
    }

    fn temp_job_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "af-api-jobs-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Polls a job's status document until it leaves `running`.
    fn await_terminal(state: &AppState, id: &str) -> Value {
        for _ in 0..2000 {
            let response = handle(state, &get(&format!("/v1/jobs/{id}")));
            assert_eq!(response.status, 200);
            let value: Value =
                serde_json::from_str(std::str::from_utf8(&response.body).unwrap()).unwrap();
            let status = match value.get("status") {
                Some(Value::Str(s)) => s.clone(),
                other => panic!("bad status field: {other:?}"),
            };
            if status != "running" {
                return value;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        panic!("job {id} never left running")
    }

    fn field_str(value: &Value, field: &str) -> String {
        match value.get(field) {
            Some(Value::Str(s)) => s.clone(),
            other => panic!("bad `{field}` field: {other:?}"),
        }
    }

    #[test]
    fn a_cancelled_sweep_answers_a_structured_503_with_partial_progress() {
        let state = state();
        let token = CancelToken::new();
        token.cancel("test cancellation");
        let request = post("/v1/sweep", r#"{"array_sizes":[16],"networks":["resnet18"]}"#);
        let (response, _) = handle_request(&state, &request, &token, None);
        assert_eq!(response.status, 503);
        let text = String::from_utf8(response.body).unwrap();
        assert!(text.contains("cancelled after 0/2 items"), "{text}");
        assert!(text.contains("test cancellation"), "{text}");
        assert!(text.starts_with("{\"error\":{"), "unstructured: {text}");
        // The executor and cache remain usable after the cancelled run.
        let ok = handle(&state, &request);
        assert_eq!(ok.status, 200);
        // A simulate under a pre-fired token also stops — and still
        // checks its pooled array state back in (nothing was taken).
        let (sim, _) = handle_request(
            &state,
            &post("/v1/simulate", r#"{"rows":8,"cols":8,"k":2,"t":6,"n":20,"m":10}"#),
            &token,
            None,
        );
        assert_eq!(sim.status, 503);
    }

    #[test]
    fn a_job_result_is_byte_identical_to_the_synchronous_sweep() {
        let dir = temp_job_dir("roundtrip");
        let config = ServerConfig {
            job_dir: Some(dir.clone()),
            ..ServerConfig::default()
        };
        let state = AppState::shared(&config);
        let body = r#"{"array_sizes":[16,32],"networks":["resnet18"]}"#;
        let submit = handle(&state, &post("/v1/jobs", body));
        assert_eq!(submit.status, 202, "{:?}", String::from_utf8(submit.body));
        let value: Value =
            serde_json::from_str(std::str::from_utf8(&submit.body).unwrap()).unwrap();
        let id = field_str(&value, "id");
        assert_eq!(field_str(&value, "tenant"), "anonymous");
        assert_eq!(state.metrics().jobs_submitted(), 1);

        let terminal = await_terminal(&state, &id);
        assert_eq!(field_str(&terminal, "status"), "completed");
        // Join the runner: the final checkpoint and counters land before
        // the assertions below read them.
        state.jobs().shutdown();
        let result = handle(&state, &get(&format!("/v1/jobs/{id}/result")));
        assert_eq!(result.status, 200);
        let sweep = handle(&state, &post("/v1/sweep", body));
        assert_eq!(sweep.status, 200);
        assert_eq!(result.body, sweep.body, "job result differs from the synchronous sweep");
        assert_eq!(state.metrics().jobs_completed(), 1);
        assert_eq!(state.metrics().tenant_active_jobs("anonymous"), 0);

        // The terminal checkpoint survives on disk with completed status.
        let text = std::fs::read_to_string(dir.join(format!("{id}.json"))).unwrap();
        assert!(text.contains("\"completed\""), "{text}");
        // Unknown ids are 404; wrong methods on the collection are 405.
        assert_eq!(handle(&state, &get("/v1/jobs/nope")).status, 404);
        assert_eq!(handle(&state, &request("PUT", "/v1/jobs")).status, 405);
        assert_eq!(handle(&state, &request("PUT", &format!("/v1/jobs/{id}"))).status, 405);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_running_checkpoint_resumes_and_completes_byte_identically() {
        let dir = temp_job_dir("resume");
        let body = r#"{"array_sizes":[16],"networks":["resnet18","mobilenet_v1"]}"#;
        // Reference run on a throwaway state.
        let reference = state();
        let sweep = handle(&reference, &post("/v1/sweep", body));
        assert_eq!(sweep.status, 200);
        // Handwrite the checkpoint a killed server would have left: one of
        // the two points completed, status still running.
        let spec = decode_sweep_text(body).unwrap();
        assert_eq!(spec.points(), 2);
        let first = sweep_point_fragment(&reference, &spec, 0).unwrap();
        let checkpoint = format!(
            r#"{{"id":"resumejob","tenant":"acme","status":"running","total":2,"request":{},"fragments":[{}],"error":""}}"#,
            serde_json::to_string(body).unwrap(),
            serde_json::to_string(&first).unwrap(),
        );
        std::fs::write(dir.join("resumejob.json"), checkpoint).unwrap();

        let config = ServerConfig {
            job_dir: Some(dir.clone()),
            ..ServerConfig::default()
        };
        let state = AppState::shared(&config);
        assert_eq!(state.metrics().jobs_resumed(), 1);
        let terminal = await_terminal(&state, "resumejob");
        assert_eq!(field_str(&terminal, "status"), "completed");
        state.jobs().shutdown();
        let result = handle(&state, &get("/v1/jobs/resumejob/result"));
        assert_eq!(result.status, 200);
        assert_eq!(
            result.body, sweep.body,
            "resumed job result differs from an uninterrupted run"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn deleting_a_job_cancels_it_cooperatively() {
        let dir = temp_job_dir("delete");
        let config = ServerConfig {
            job_dir: Some(dir.clone()),
            ..ServerConfig::default()
        };
        let state = AppState::shared(&config);
        // Enough points that the DELETE almost always lands mid-run.
        let body = r#"{"array_sizes":[64,128,256,512,1024,2048,4096,33],"networks":["resnet50","vgg16","resnet34","convnext_tiny"]}"#;
        let submit = handle(&state, &post("/v1/jobs", body));
        assert_eq!(submit.status, 202);
        let value: Value =
            serde_json::from_str(std::str::from_utf8(&submit.body).unwrap()).unwrap();
        let id = field_str(&value, "id");
        let deleted = handle(&state, &request("DELETE", &format!("/v1/jobs/{id}")));
        assert_eq!(deleted.status, 200);
        let terminal = await_terminal(&state, &id);
        let status = field_str(&terminal, "status");
        state.jobs().shutdown();
        // The job may have completed before the DELETE landed; both
        // outcomes must be coherent, and a cancelled job has no result.
        if status == "cancelled" {
            let result = handle(&state, &get(&format!("/v1/jobs/{id}/result")));
            assert_eq!(result.status, 409);
            assert_eq!(state.metrics().jobs_cancelled(), 1);
            assert_eq!(state.metrics().cancelled("job"), 1);
        } else {
            assert_eq!(status, "completed");
        }
        assert_eq!(state.metrics().tenant_active_jobs("anonymous"), 0);
        // Deleting a terminal job is an idempotent no-op.
        let again = handle(&state, &request("DELETE", &format!("/v1/jobs/{id}")));
        assert_eq!(again.status, 200);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn job_submission_enforces_the_tenant_active_job_cap() {
        let dir = temp_job_dir("cap");
        let config = ServerConfig {
            job_dir: Some(dir.clone()),
            tenant_max_jobs: 1,
            ..ServerConfig::default()
        };
        let state = AppState::shared(&config);
        let body = r#"{"array_sizes":[64,128,256,512,1024,2048,4096,33],"networks":["resnet50","vgg16","resnet34","convnext_tiny"]}"#;
        let first = handle(&state, &post("/v1/jobs", body));
        assert_eq!(first.status, 202);
        let second = handle(&state, &post("/v1/jobs", body));
        if second.status == 429 {
            assert_eq!(state.metrics().tenant_sheds("anonymous"), 1);
        } else {
            // The first job finished before the second submit: no shed.
            assert_eq!(second.status, 202);
        }
        // A malformed job body is rejected up front, not accepted-then-failed.
        let bad = handle(&state, &post("/v1/jobs", r#"{"array_sizes":[]}"#));
        assert_eq!(bad.status, 400);
        // Unattached states (AppState::new, no Arc) refuse submissions.
        let plain = AppState::new(&ServerConfig::default());
        let refused = handle(&plain, &post("/v1/jobs", r#"{"array_sizes":[16],"networks":["resnet18"]}"#));
        assert_eq!(refused.status, 503);
        // Join the runners (any still-running job checkpoints as
        // `running` and would resume on a restart) before cleanup.
        state.jobs().shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn metrics_render_after_traffic() {
        let state = state();
        let plan = post("/v1/plan", r#"{"network":"resnet34","rows":16,"cols":16}"#);
        // handle() itself does not record metrics (the connection loop
        // does), so record explicitly like the loop would.
        let response = handle(&state, &plan);
        state
            .metrics()
            .observe(route_label(&plan.path), response.status, std::time::Duration::from_micros(42));
        let rendered = handle(&state, &get("/metrics"));
        assert_eq!(rendered.status, 200);
        let text = String::from_utf8(rendered.body).unwrap();
        assert!(text.contains("arrayflex_serve_requests_total{route=\"/v1/plan\",status=\"200\"} 1"));
        assert!(text.contains("arrayflex_serve_plan_cache_misses_total 1"));
    }
}
