//! A loopback load generator for the planning service.
//!
//! Hammers one endpoint from a configurable number of client threads
//! (each issuing one request per connection, exactly like an external
//! client) and reports sustained throughput and latency percentiles. The
//! `loadgen` binary wraps [`run`]; the integration tests use it to assert
//! the acceptance criterion of ≥ 1000 requests with zero errors.

use crate::client;
use serde::Serialize;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// What to send, where, and how hard.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Path to `POST` to (or `GET` when `body` is `None`).
    pub path: String,
    /// JSON body (`None` issues `GET` requests instead).
    pub body: Option<String>,
    /// Total requests to issue.
    pub requests: usize,
    /// Concurrent client threads.
    pub clients: usize,
}

impl LoadgenConfig {
    /// A plan-request load against `addr`: the default workload of the
    /// `loadgen` binary (ResNet-34 on a 128x128 array).
    #[must_use]
    pub fn plan_workload(addr: SocketAddr, requests: usize, clients: usize) -> Self {
        Self {
            addr,
            path: "/v1/plan".to_owned(),
            body: Some(r#"{"network":"resnet34","rows":128,"cols":128}"#.to_owned()),
            requests,
            clients,
        }
    }

    /// A `/v1/simulate` load against `addr`: a small seeded cycle-accurate
    /// cross-check (16x16 array, k = 2, an 8x48x24 GEMM), heavy enough to
    /// exercise the simulator pool but far below the route's size cap.
    #[must_use]
    pub fn simulate_workload(addr: SocketAddr, requests: usize, clients: usize) -> Self {
        Self {
            addr,
            path: "/v1/simulate".to_owned(),
            body: Some(r#"{"rows":16,"cols":16,"k":2,"t":8,"n":48,"m":24,"seed":7}"#.to_owned()),
            requests,
            clients,
        }
    }
}

/// Aggregated result of one load-generation run.
#[derive(Debug, Clone, Serialize)]
pub struct LoadgenReport {
    /// Requests issued.
    pub requests: usize,
    /// Requests that failed (transport error or non-200 status).
    pub errors: usize,
    /// Client threads used.
    pub clients: usize,
    /// Wall-clock duration of the whole run in seconds.
    pub elapsed_s: f64,
    /// Sustained requests per second.
    pub rps: f64,
    /// Median request latency in microseconds.
    pub p50_us: u64,
    /// 90th-percentile latency in microseconds.
    pub p90_us: u64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: u64,
    /// Worst-case latency in microseconds.
    pub max_us: u64,
}

impl LoadgenReport {
    /// Renders the report as a small human-readable table.
    #[must_use]
    pub fn text(&self) -> String {
        format!(
            "requests: {} ({} errors), clients: {}\n\
             elapsed:  {:.3} s ({:.0} req/s)\n\
             latency:  p50 {} us, p90 {} us, p99 {} us, max {} us",
            self.requests,
            self.errors,
            self.clients,
            self.elapsed_s,
            self.rps,
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.max_us
        )
    }
}

/// The per-endpoint reports of one `loadgen` invocation: the planning
/// route and the (pooled) cycle-accurate simulation route, so service-side
/// wins on either path show up in the same JSON document.
#[derive(Debug, Clone, Serialize)]
pub struct CombinedReport {
    /// The `/v1/plan` load.
    pub plan: LoadgenReport,
    /// The `/v1/simulate` load.
    pub simulate: LoadgenReport,
}

impl CombinedReport {
    /// Total failed requests across both endpoints.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.plan.errors + self.simulate.errors
    }

    /// Renders both endpoint reports as human-readable tables.
    #[must_use]
    pub fn text(&self) -> String {
        format!(
            "POST /v1/plan\n{}\nPOST /v1/simulate\n{}",
            self.plan.text(),
            self.simulate.text()
        )
    }
}

/// Runs the load: `clients` threads share a global request budget and each
/// issues sequential one-connection-per-request calls until it is spent.
///
/// A `requests` count of zero skips the load entirely and returns an
/// all-zero report (so callers can opt out of one endpoint of a combined
/// run, e.g. `loadgen --sim-requests 0`).
///
/// # Panics
///
/// Panics if `clients` is zero.
#[must_use]
pub fn run(config: &LoadgenConfig) -> LoadgenReport {
    assert!(config.clients > 0, "loadgen needs at least one client");
    if config.requests == 0 {
        return LoadgenReport {
            requests: 0,
            errors: 0,
            clients: config.clients,
            elapsed_s: 0.0,
            rps: 0.0,
            p50_us: 0,
            p90_us: 0,
            p99_us: 0,
            max_us: 0,
        };
    }
    let remaining = AtomicUsize::new(config.requests);
    let started = Instant::now();
    let mut per_client: Vec<(Vec<u64>, usize)> = std::thread::scope(|scope| {
        let remaining = &remaining;
        // The collect is load-bearing: every client thread must be spawned
        // before the first join, otherwise the load degenerates to one
        // sequential client at a time.
        #[allow(clippy::needless_collect)]
        let handles: Vec<_> = (0..config.clients)
            .map(|_| {
                scope.spawn(move || {
                    let mut latencies = Vec::new();
                    let mut errors = 0usize;
                    loop {
                        // Claim one unit of the shared budget.
                        let claimed = remaining
                            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                                n.checked_sub(1)
                            })
                            .is_ok();
                        if !claimed {
                            break;
                        }
                        let request_started = Instant::now();
                        let outcome = match &config.body {
                            Some(body) => client::post_json(config.addr, &config.path, body),
                            None => client::get(config.addr, &config.path),
                        };
                        let micros = u64::try_from(request_started.elapsed().as_micros())
                            .unwrap_or(u64::MAX);
                        match outcome {
                            Ok(response) if response.status == 200 => latencies.push(micros),
                            _ => errors += 1,
                        }
                    }
                    (latencies, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("loadgen client panicked"))
            .collect()
    });
    let elapsed_s = started.elapsed().as_secs_f64();

    let mut latencies: Vec<u64> = Vec::with_capacity(config.requests);
    let mut errors = 0usize;
    for (client_latencies, client_errors) in &mut per_client {
        latencies.append(client_latencies);
        errors += *client_errors;
    }
    latencies.sort_unstable();
    let percentile = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let rank = ((latencies.len() as f64) * p).ceil() as usize;
        latencies[rank.clamp(1, latencies.len()) - 1]
    };
    LoadgenReport {
        requests: config.requests,
        errors,
        clients: config.clients,
        elapsed_s,
        rps: config.requests as f64 / elapsed_s.max(f64::MIN_POSITIVE),
        p50_us: percentile(0.50),
        p90_us: percentile(0.90),
        p99_us: percentile(0.99),
        max_us: latencies.last().copied().unwrap_or(0),
    }
}
