//! A loopback load generator for the planning service.
//!
//! Hammers one endpoint from a configurable number of client threads and
//! reports sustained throughput and latency percentiles, with connection
//! setup and request service measured separately. Three connection modes
//! ([`ConnectionMode`]) cover the serving spectrum: one connection per
//! request (`close`, exactly like a cold external client), a persistent
//! keep-alive connection per client, and pipelined keep-alive (`N`
//! requests written back to back per batch). The `loadgen` binary wraps
//! [`run`] and the serve benchmark suite ([`bench_suite`] /
//! [`compare_serve_reports`]); the integration tests use it to assert the
//! acceptance criterion of ≥ 1000 requests with zero errors.

use crate::api::{self, AppState};
use crate::client::{self, ClientResponse, PersistentClient};
use crate::http::{HttpRequest, ServerConfig};
use arrayflex::PlanCache;
use gemm::rng::SplitMix64;
use serde::{Deserialize, Serialize};
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// How the load generator uses connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectionMode {
    /// One connection per request (`connection: close`), like a cold
    /// external client. Connect and request latency are reported
    /// separately.
    Close,
    /// One persistent keep-alive connection per client thread, one
    /// request in flight at a time.
    KeepAlive,
    /// Persistent connections with up to this many requests written back
    /// to back before reading the responses.
    Pipeline(usize),
}

impl ConnectionMode {
    /// A short stable label (`close`, `keepalive`, `pipeline8`) used in
    /// reports and bench names.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Self::Close => "close".to_owned(),
            Self::KeepAlive => "keepalive".to_owned(),
            Self::Pipeline(depth) => format!("pipeline{depth}"),
        }
    }
}

/// What to send, where, and how hard.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Path to `POST` to (or `GET` when `body` is `None`).
    pub path: String,
    /// JSON body (`None` issues `GET` requests instead).
    pub body: Option<String>,
    /// Total requests to issue.
    pub requests: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// How connections are used (default [`ConnectionMode::Close`]).
    pub mode: ConnectionMode,
    /// When set, requests draw their body from a pool of distinct
    /// synthetic-network plan requests with zipfian popularity instead of
    /// repeating [`LoadgenConfig::body`] — so cache hit rates under
    /// realistic key skew are measured rather than assumed.
    pub zipf: Option<ZipfWorkload>,
}

impl LoadgenConfig {
    /// A plan-request load against `addr`: the default workload of the
    /// `loadgen` binary (ResNet-34 on a 128x128 array).
    #[must_use]
    pub fn plan_workload(addr: SocketAddr, requests: usize, clients: usize) -> Self {
        Self {
            addr,
            path: "/v1/plan".to_owned(),
            body: Some(r#"{"network":"resnet34","rows":128,"cols":128}"#.to_owned()),
            requests,
            clients,
            mode: ConnectionMode::Close,
            zipf: None,
        }
    }

    /// A `/v1/simulate` load against `addr`: a small seeded cycle-accurate
    /// cross-check (16x16 array, k = 2, an 8x48x24 GEMM), heavy enough to
    /// exercise the simulator pool but far below the route's size cap.
    #[must_use]
    pub fn simulate_workload(addr: SocketAddr, requests: usize, clients: usize) -> Self {
        Self {
            addr,
            path: "/v1/simulate".to_owned(),
            body: Some(r#"{"rows":16,"cols":16,"k":2,"t":8,"n":48,"m":24,"seed":7}"#.to_owned()),
            requests,
            clients,
            mode: ConnectionMode::Close,
            zipf: None,
        }
    }
}

/// A zipfian `/v1/plan` workload: a pool of distinct synthetic networks
/// whose request popularity follows Zipf(`s`), sampled deterministically
/// from `seed`.
#[derive(Debug, Clone)]
pub struct ZipfWorkload {
    /// Zipf skew exponent (`0.0` is uniform; web-like traces are ~1.0).
    pub s: f64,
    /// Number of distinct networks in the pool.
    pub pool: usize,
    /// Seed of the per-client sampling streams (client `i` samples from
    /// `SplitMix64::new(seed + i)`), so a fixed seed and client count
    /// reproduce the exact request mix.
    pub seed: u64,
    /// Array rows of every request in the pool.
    pub rows: u32,
    /// Array columns of every request in the pool.
    pub cols: u32,
}

impl ZipfWorkload {
    /// The pool of request bodies, one distinct inline synthetic network
    /// per popularity rank (rank 0 is the hottest key). Bodies depend only
    /// on `pool`/`rows`/`cols`, never on the seed.
    ///
    /// # Panics
    ///
    /// Panics if the pool is empty.
    #[must_use]
    pub fn bodies(&self) -> Vec<String> {
        assert!(self.pool > 0, "zipf workload needs a non-empty pool");
        (0..self.pool)
            .map(|index| {
                // Distinct per index (base_channels grows with the rank),
                // with some depth variety so plan sizes differ too.
                let network = cnn::models::synthetic_cnn(
                    1 + (index % 3) as u32,
                    4 + index,
                    16,
                );
                format!(
                    r#"{{"network":{},"rows":{},"cols":{}}}"#,
                    serde_json::to_string(&network).expect("networks serialize"),
                    self.rows,
                    self.cols
                )
            })
            .collect()
    }
}

/// Samples pool indices with Zipf(`s`) popularity: rank `r` (0-based) has
/// weight `1 / (r + 1)^s`. Sampling walks a precomputed CDF with
/// `partition_point`, so one draw is a `next_f64` plus a binary search.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is not finite.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf sampler needs at least one rank");
        assert!(s.is_finite(), "zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for rank in 1..=n {
            total += (rank as f64).powf(-s);
            cdf.push(total);
        }
        for bound in &mut cdf {
            *bound /= total;
        }
        Self { cdf }
    }

    /// Draws one rank in `0..n` from `rng`.
    #[must_use]
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        self.cdf
            .partition_point(|&bound| bound <= u)
            .min(self.cdf.len() - 1)
    }

    /// The probability of rank `r` (0-based).
    #[must_use]
    pub fn probability(&self, rank: usize) -> f64 {
        let below = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        self.cdf[rank] - below
    }
}

/// Aggregated result of one load-generation run.
#[derive(Debug, Clone, Serialize)]
pub struct LoadgenReport {
    /// Requests issued.
    pub requests: usize,
    /// Requests that failed (transport error or non-200 status other
    /// than a shed).
    pub errors: usize,
    /// Requests the server shed under overload (503 with `Retry-After`):
    /// deliberate backpressure, tallied apart from errors so the
    /// overload path is regression-gated alongside latency.
    pub sheds: usize,
    /// Client threads used.
    pub clients: usize,
    /// Connection mode label (`close`, `keepalive`, `pipelineN`).
    pub mode: String,
    /// Connections opened over the run (one per request in `close` mode,
    /// roughly one per client in the persistent modes).
    pub connects: usize,
    /// Persistent connections that had to be re-opened after an error.
    pub reconnects: usize,
    /// Wall-clock duration of the whole run in seconds.
    pub elapsed_s: f64,
    /// Sustained requests per second.
    pub rps: f64,
    /// Median request latency in microseconds (excluding connection
    /// setup, which is reported separately below).
    pub p50_us: u64,
    /// 90th-percentile latency in microseconds.
    pub p90_us: u64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: u64,
    /// Worst-case latency in microseconds.
    pub max_us: u64,
    /// Median connection-setup latency in microseconds.
    pub connect_p50_us: u64,
    /// 99th-percentile connection-setup latency in microseconds.
    pub connect_p99_us: u64,
    /// Worst-case connection-setup latency in microseconds.
    pub connect_max_us: u64,
}

impl LoadgenReport {
    /// Renders the report as a small human-readable table.
    #[must_use]
    pub fn text(&self) -> String {
        format!(
            "requests: {} ({} errors, {} shed), clients: {}, mode: {}\n\
             elapsed:  {:.3} s ({:.0} req/s)\n\
             latency:  p50 {} us, p90 {} us, p99 {} us, max {} us\n\
             connect:  {} opened ({} reopened), p50 {} us, p99 {} us, max {} us",
            self.requests,
            self.errors,
            self.sheds,
            self.clients,
            self.mode,
            self.elapsed_s,
            self.rps,
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.max_us,
            self.connects,
            self.reconnects,
            self.connect_p50_us,
            self.connect_p99_us,
            self.connect_max_us
        )
    }
}

/// Plan-cache counters read after a run (present when `loadgen` owned the
/// in-process server and could read its cache directly).
#[derive(Debug, Clone, Serialize)]
pub struct CacheReport {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to plan.
    pub misses: u64,
    /// Fraction of lookups served from the cache.
    pub hit_rate: f64,
    /// Plans resident at the end of the run.
    pub entries: usize,
    /// Estimated resident bytes at the end of the run.
    pub bytes: usize,
    /// Plans evicted by capacity or byte-budget pressure.
    pub evictions: u64,
    /// Plans expired by the write-TTL.
    pub expirations: u64,
}

impl CacheReport {
    /// Reads the counters of `cache` as they stand now.
    #[must_use]
    pub fn scrape(cache: &PlanCache) -> Self {
        Self {
            hits: cache.hits(),
            misses: cache.misses(),
            hit_rate: cache.hit_rate(),
            entries: cache.len(),
            bytes: cache.bytes(),
            evictions: cache.evictions(),
            expirations: cache.expirations(),
        }
    }

    /// Renders the counters as one human-readable line.
    #[must_use]
    pub fn text(&self) -> String {
        format!(
            "cache:    {} hits / {} misses ({:.1}% hit rate), {} entries, {} bytes, \
             {} evictions, {} expirations",
            self.hits,
            self.misses,
            self.hit_rate * 100.0,
            self.entries,
            self.bytes,
            self.evictions,
            self.expirations
        )
    }
}

/// The per-endpoint reports of one `loadgen` invocation: the planning
/// route and the (pooled) cycle-accurate simulation route, so service-side
/// wins on either path show up in the same JSON document.
#[derive(Debug, Clone, Serialize)]
pub struct CombinedReport {
    /// The `/v1/plan` load.
    pub plan: LoadgenReport,
    /// The `/v1/simulate` load.
    pub simulate: LoadgenReport,
    /// Plan-cache counters of the in-process server (`None` when the load
    /// targeted a remote address).
    pub cache: Option<CacheReport>,
}

impl CombinedReport {
    /// Total failed requests across both endpoints.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.plan.errors + self.simulate.errors
    }

    /// Renders both endpoint reports as human-readable tables.
    #[must_use]
    pub fn text(&self) -> String {
        let mut out = format!(
            "POST /v1/plan\n{}\nPOST /v1/simulate\n{}",
            self.plan.text(),
            self.simulate.text()
        );
        if let Some(cache) = &self.cache {
            out.push('\n');
            out.push_str(&cache.text());
        }
        out
    }
}

/// Per-client-thread tallies, merged into the final report.
#[derive(Debug, Default)]
struct ClientStats {
    latencies: Vec<u64>,
    connect_latencies: Vec<u64>,
    errors: usize,
    sheds: usize,
    connects: usize,
    reconnects: usize,
}

impl ClientStats {
    /// Tallies one decoded response: 200s record latency, shed 503s count
    /// as deliberate backpressure, everything else is an error.
    fn tally(&mut self, response: &ClientResponse, latency_us: u64) {
        if response.status == 200 {
            self.latencies.push(latency_us);
        } else if response.status == 503 && response.retry_after.is_some() {
            self.sheds += 1;
        } else {
            self.errors += 1;
        }
    }
}

impl ClientStats {
    /// Opens (or re-opens) the persistent connection, recording the
    /// connect latency; `false` when the connect itself failed.
    fn ensure_connected(&mut self, conn: &mut Option<PersistentClient>, addr: SocketAddr) -> bool {
        if conn.is_some() {
            return true;
        }
        let started = Instant::now();
        match PersistentClient::connect(addr) {
            Ok(client) => {
                self.connect_latencies.push(micros_since(started));
                if self.connects > 0 {
                    self.reconnects += 1;
                }
                self.connects += 1;
                *conn = Some(client);
                true
            }
            Err(_) => false,
        }
    }
}

fn micros_since(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// One full `connection: close` round trip with connect and request
/// timed separately: `(connect_us, request_us, response)`.
fn close_request(
    addr: SocketAddr,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u64, u64, ClientResponse)> {
    let connect_started = Instant::now();
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_nodelay(true)?;
    let connect_us = micros_since(connect_started);

    let request_started = Instant::now();
    let method = if body.is_some() { "POST" } else { "GET" };
    let mut head = format!("{method} {path} HTTP/1.1\r\nconnection: close\r\n");
    if let Some(body) = body {
        head.push_str(&format!(
            "content-type: application/json\r\ncontent-length: {}\r\n",
            body.len()
        ));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    if let Some(body) = body {
        stream.write_all(body.as_bytes())?;
    }
    stream.flush()?;
    let response = client::read_response(&mut BufReader::new(stream))?;
    Ok((connect_us, micros_since(request_started), response))
}

/// One client thread's worth of `close`-mode requests.
fn run_close(
    config: &LoadgenConfig,
    stats: &mut ClientStats,
    claim: &impl Fn() -> bool,
    mut next_body: impl FnMut() -> Option<String>,
) {
    while claim() {
        let body = next_body();
        match close_request(config.addr, &config.path, body.as_deref()) {
            Ok((connect_us, request_us, response)) => {
                stats.connects += 1;
                stats.connect_latencies.push(connect_us);
                stats.tally(&response, request_us);
            }
            Err(_) => stats.errors += 1,
        }
    }
}

/// One client thread's worth of keep-alive requests (one in flight at a
/// time; a transport error reconnects and retries the claimed request
/// once).
fn run_keepalive(
    config: &LoadgenConfig,
    stats: &mut ClientStats,
    claim: &impl Fn() -> bool,
    mut next_body: impl FnMut() -> Option<String>,
) {
    let mut conn: Option<PersistentClient> = None;
    while claim() {
        let body = next_body();
        let method = if body.is_some() { "POST" } else { "GET" };
        let mut served = false;
        for _attempt in 0..2 {
            if !stats.ensure_connected(&mut conn, config.addr) {
                continue;
            }
            let started = Instant::now();
            match conn
                .as_mut()
                .expect("ensure_connected leaves a client")
                .request(method, &config.path, body.as_deref().map(str::as_bytes))
            {
                Ok(response) => {
                    stats.tally(&response, micros_since(started));
                    served = true;
                    break;
                }
                // The connection died under us (server idle-close racing
                // the write, mid-stream failure): reconnect and retry.
                Err(_) => conn = None,
            }
        }
        if !served {
            stats.errors += 1;
        }
    }
}

/// One client thread's worth of pipelined keep-alive batches: claim up to
/// `depth` requests, write them back to back, then read the responses in
/// order. Per-request latency is measured from the batch's first write.
fn run_pipelined(
    config: &LoadgenConfig,
    depth: usize,
    stats: &mut ClientStats,
    claim: &impl Fn() -> bool,
    mut next_body: impl FnMut() -> Option<String>,
) {
    let depth = depth.max(1);
    let mut conn: Option<PersistentClient> = None;
    loop {
        let mut bodies = Vec::with_capacity(depth);
        while bodies.len() < depth && claim() {
            bodies.push(next_body());
        }
        if bodies.is_empty() {
            return;
        }
        if !stats.ensure_connected(&mut conn, config.addr)
            && !stats.ensure_connected(&mut conn, config.addr)
        {
            stats.errors += bodies.len();
            continue;
        }
        let client = conn.as_mut().expect("ensure_connected leaves a client");
        let batch_started = Instant::now();
        let mut wrote = true;
        for body in &bodies {
            let method = if body.is_some() { "POST" } else { "GET" };
            if client
                .send(method, &config.path, body.as_deref().map(str::as_bytes))
                .is_err()
            {
                wrote = false;
                break;
            }
        }
        if !wrote {
            stats.errors += bodies.len();
            conn = None;
            continue;
        }
        for read in 0..bodies.len() {
            match client.recv() {
                Ok(response) => {
                    stats.tally(&response, micros_since(batch_started));
                }
                Err(_) => {
                    stats.errors += bodies.len() - read;
                    conn = None;
                    break;
                }
            }
        }
    }
}

/// Runs the load: `clients` threads share a global request budget and each
/// works through it in the configured [`ConnectionMode`].
///
/// A `requests` count of zero skips the load entirely and returns an
/// all-zero report (so callers can opt out of one endpoint of a combined
/// run, e.g. `loadgen --sim-requests 0`).
///
/// # Panics
///
/// Panics if `clients` is zero.
#[must_use]
pub fn run(config: &LoadgenConfig) -> LoadgenReport {
    assert!(config.clients > 0, "loadgen needs at least one client");
    if config.requests == 0 {
        return LoadgenReport {
            requests: 0,
            errors: 0,
            sheds: 0,
            clients: config.clients,
            mode: config.mode.label(),
            connects: 0,
            reconnects: 0,
            elapsed_s: 0.0,
            rps: 0.0,
            p50_us: 0,
            p90_us: 0,
            p99_us: 0,
            max_us: 0,
            connect_p50_us: 0,
            connect_p99_us: 0,
            connect_max_us: 0,
        };
    }
    // A zipfian workload pre-renders its body pool once; every client then
    // samples ranks from its own seeded stream, so the request mix is a
    // pure function of (seed, clients, requests).
    let zipf = config
        .zipf
        .as_ref()
        .map(|z| (z.bodies(), ZipfSampler::new(z.pool, z.s), z.seed));
    let remaining = AtomicUsize::new(config.requests);
    let started = Instant::now();
    let mut per_client: Vec<ClientStats> = std::thread::scope(|scope| {
        let remaining = &remaining;
        let zipf = &zipf;
        // The collect is load-bearing: every client thread must be spawned
        // before the first join, otherwise the load degenerates to one
        // sequential client at a time.
        #[allow(clippy::needless_collect)]
        let handles: Vec<_> = (0..config.clients)
            .map(|client_index| {
                scope.spawn(move || {
                    let mut rng = zipf
                        .as_ref()
                        .map(|(_, _, seed)| SplitMix64::new(seed.wrapping_add(client_index as u64)));
                    let claim = || {
                        remaining
                            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                                n.checked_sub(1)
                            })
                            .is_ok()
                    };
                    let next_body = || match (zipf, &mut rng) {
                        (Some((bodies, sampler, _)), Some(rng)) => {
                            Some(bodies[sampler.sample(rng)].clone())
                        }
                        _ => config.body.clone(),
                    };
                    let mut stats = ClientStats::default();
                    match config.mode {
                        ConnectionMode::Close => {
                            run_close(config, &mut stats, &claim, next_body);
                        }
                        ConnectionMode::KeepAlive => {
                            run_keepalive(config, &mut stats, &claim, next_body);
                        }
                        ConnectionMode::Pipeline(depth) => {
                            run_pipelined(config, depth, &mut stats, &claim, next_body);
                        }
                    }
                    stats
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("loadgen client panicked"))
            .collect()
    });
    let elapsed_s = started.elapsed().as_secs_f64();

    let mut latencies: Vec<u64> = Vec::with_capacity(config.requests);
    let mut connect_latencies: Vec<u64> = Vec::new();
    let mut errors = 0usize;
    let mut sheds = 0usize;
    let mut connects = 0usize;
    let mut reconnects = 0usize;
    for stats in &mut per_client {
        latencies.append(&mut stats.latencies);
        connect_latencies.append(&mut stats.connect_latencies);
        errors += stats.errors;
        sheds += stats.sheds;
        connects += stats.connects;
        reconnects += stats.reconnects;
    }
    latencies.sort_unstable();
    connect_latencies.sort_unstable();
    let percentile = |sorted: &[u64], p: f64| -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let rank = ((sorted.len() as f64) * p).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    };
    LoadgenReport {
        requests: config.requests,
        errors,
        sheds,
        clients: config.clients,
        mode: config.mode.label(),
        connects,
        reconnects,
        elapsed_s,
        rps: config.requests as f64 / elapsed_s.max(f64::MIN_POSITIVE),
        p50_us: percentile(&latencies, 0.50),
        p90_us: percentile(&latencies, 0.90),
        p99_us: percentile(&latencies, 0.99),
        max_us: latencies.last().copied().unwrap_or(0),
        connect_p50_us: percentile(&connect_latencies, 0.50),
        connect_p99_us: percentile(&connect_latencies, 0.99),
        connect_max_us: connect_latencies.last().copied().unwrap_or(0),
    }
}

// ---------------------------------------------------------------------------
// Serve benchmark suite
// ---------------------------------------------------------------------------

/// Schema version of [`ServeBenchReport`]; bump on breaking changes.
pub const SERVE_BENCH_SCHEMA: u32 = 1;

/// The committed close-mode reference: `/v1/plan` RPS of the original
/// thread-per-connection server with one connection per request, measured
/// on the reference container (`EXPERIMENTS.md` §"Serving layer"). The
/// event-loop keep-alive path is gated on sustaining ≥10x this number.
pub const REFERENCE_CLOSE_RPS: f64 = 4600.0;

/// One serving benchmark: an endpoint driven in one connection mode.
#[derive(Debug, Clone, Serialize)]
pub struct ServeBenchRecord {
    /// Stable bench name (`plan_keepalive`, `simulate_close`, ...).
    pub name: String,
    /// Endpoint path the bench hits.
    pub endpoint: String,
    /// Connection mode label.
    pub mode: String,
    /// Requests issued.
    pub requests: usize,
    /// Client threads.
    pub clients: usize,
    /// Sustained requests per second (the compared quantity).
    pub rps: f64,
    /// Median request latency in microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency in microseconds.
    pub p99_us: u64,
    /// Median connection-setup latency in microseconds.
    pub connect_p50_us: u64,
    /// Failed requests (must be zero for a valid baseline).
    pub errors: usize,
    /// Requests shed under overload (503 + `Retry-After`). Should be
    /// zero in the unsaturated baseline matrix; gated by shed *rate* in
    /// the comparison so overload-path regressions fail CI.
    pub sheds: usize,
    /// `sheds / requests` — the compared overload quantity.
    pub shed_rate: f64,
}

// Hand-written so baselines committed before the shed fields existed
// still parse: absent `sheds`/`shed_rate` default to zero. (The vendored
// derive has no `#[serde(default)]`.)
impl Deserialize for ServeBenchRecord {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        fn field<T: Deserialize>(value: &serde::Value, name: &str) -> Result<T, serde::DeError> {
            let field = value
                .get(name)
                .ok_or_else(|| serde::DeError::new(format!("missing field `{name}`")))?;
            T::from_value(field)
        }
        fn optional<T: Deserialize + Default>(
            value: &serde::Value,
            name: &str,
        ) -> Result<T, serde::DeError> {
            value.get(name).map_or_else(|| Ok(T::default()), T::from_value)
        }
        Ok(Self {
            name: field(value, "name")?,
            endpoint: field(value, "endpoint")?,
            mode: field(value, "mode")?,
            requests: field(value, "requests")?,
            clients: field(value, "clients")?,
            rps: field(value, "rps")?,
            p50_us: field(value, "p50_us")?,
            p99_us: field(value, "p99_us")?,
            connect_p50_us: field(value, "connect_p50_us")?,
            errors: field(value, "errors")?,
            sheds: optional(value, "sheds")?,
            shed_rate: optional(value, "shed_rate")?,
        })
    }
}

/// The committed serving baseline (`BENCH_serve.json`): RPS and latency
/// percentiles per endpoint and connection mode.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeBenchReport {
    /// Schema version ([`SERVE_BENCH_SCHEMA`]).
    pub schema: u32,
    /// The benches, in matrix order.
    pub benches: Vec<ServeBenchRecord>,
}

impl ServeBenchReport {
    /// Looks a bench up by name.
    #[must_use]
    pub fn bench(&self, name: &str) -> Option<&ServeBenchRecord> {
        self.benches.iter().find(|bench| bench.name == name)
    }

    /// The keep-alive speedup over this run's own close mode on `/v1/plan`
    /// (`plan_keepalive.rps / plan_close.rps`). Informational: close mode
    /// shares the rendered-response fast path, so this understates the
    /// win over the original server — [`reference_speedup`] is the gated
    /// ratio.
    ///
    /// [`reference_speedup`]: Self::reference_speedup
    #[must_use]
    pub fn keepalive_speedup(&self) -> Option<f64> {
        let close = self.bench("plan_close")?.rps;
        let keepalive = self.bench("plan_keepalive")?.rps;
        if close > 0.0 {
            Some(keepalive / close)
        } else {
            None
        }
    }

    /// The keep-alive speedup over the committed close-mode reference
    /// (`plan_keepalive.rps` / [`REFERENCE_CLOSE_RPS`]), the headline
    /// ratio the baseline exists to defend (must stay ≥10x).
    #[must_use]
    pub fn reference_speedup(&self) -> Option<f64> {
        Some(self.bench("plan_keepalive")?.rps / REFERENCE_CLOSE_RPS)
    }
}

/// The benchmark matrix: `(name, endpoint-config, mode, full-requests,
/// quick-requests)`. Request counts are scaled so every cell runs for a
/// comparable wall-clock slice despite the ~10-50x RPS spread.
fn bench_matrix(addr: SocketAddr, quick: bool) -> Vec<(String, LoadgenConfig)> {
    let clients = 4;
    let cell = |name: &str, mut config: LoadgenConfig, mode: ConnectionMode, full: usize, q: usize| {
        config.requests = if quick { q } else { full };
        config.mode = mode;
        (name.to_owned(), config)
    };
    vec![
        cell(
            "plan_close",
            LoadgenConfig::plan_workload(addr, 0, clients),
            ConnectionMode::Close,
            4000,
            800,
        ),
        cell(
            "plan_keepalive",
            LoadgenConfig::plan_workload(addr, 0, clients),
            ConnectionMode::KeepAlive,
            20000,
            3000,
        ),
        cell(
            "plan_pipeline8",
            LoadgenConfig::plan_workload(addr, 0, clients),
            ConnectionMode::Pipeline(8),
            30000,
            4000,
        ),
        cell(
            "simulate_close",
            LoadgenConfig::simulate_workload(addr, 0, clients),
            ConnectionMode::Close,
            1500,
            300,
        ),
        cell(
            "simulate_keepalive",
            LoadgenConfig::simulate_workload(addr, 0, clients),
            ConnectionMode::KeepAlive,
            3000,
            600,
        ),
    ]
}

/// Runs the serving benchmark matrix against `addr` and returns the
/// report. `quick` shrinks request counts ~5-7x for CI.
#[must_use]
pub fn bench_suite(addr: SocketAddr, quick: bool) -> ServeBenchReport {
    let benches = bench_matrix(addr, quick)
        .into_iter()
        .map(|(name, config)| {
            let report = run(&config);
            ServeBenchRecord {
                name,
                endpoint: config.path,
                mode: report.mode.clone(),
                requests: report.requests,
                clients: report.clients,
                rps: report.rps,
                p50_us: report.p50_us,
                p99_us: report.p99_us,
                connect_p50_us: report.connect_p50_us,
                errors: report.errors,
                sheds: report.sheds,
                shed_rate: report.sheds as f64 / (report.requests.max(1)) as f64,
            }
        })
        .collect();
    ServeBenchReport {
        schema: SERVE_BENCH_SCHEMA,
        benches,
    }
}

/// Structural validation of a serve bench report: schema version, a
/// non-empty matrix, zero errors and positive finite RPS everywhere.
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn validate_serve_report(report: &ServeBenchReport) -> Result<(), String> {
    if report.schema != SERVE_BENCH_SCHEMA {
        return Err(format!(
            "schema {} does not match expected {SERVE_BENCH_SCHEMA}",
            report.schema
        ));
    }
    if report.benches.is_empty() {
        return Err("report contains no benches".to_owned());
    }
    for bench in &report.benches {
        if bench.errors > 0 {
            return Err(format!("bench {} recorded {} errors", bench.name, bench.errors));
        }
        if !(bench.rps.is_finite() && bench.rps > 0.0) {
            return Err(format!("bench {} has invalid rps {}", bench.name, bench.rps));
        }
        if bench.requests == 0 {
            return Err(format!("bench {} issued no requests", bench.name));
        }
    }
    Ok(())
}

/// Shed-rate slack the comparison tolerates: a candidate may shed at most
/// this much more of its requests than the baseline did before it counts
/// as an overload-path regression.
pub const SHED_RATE_SLACK: f64 = 0.05;

/// Compares a current serve bench report against a committed baseline,
/// mirroring `bench_baseline --compare`: every baseline bench must still
/// exist, keep `new_rps * max_regression >= old_rps`, and keep its shed
/// rate within [`SHED_RATE_SLACK`] of the baseline's — a server that got
/// "faster" by shedding the work is a regression, not a win.
///
/// # Errors
///
/// Returns the rendered table plus the list of violations when any bench
/// regressed beyond `max_regression`, shed beyond the slack, or
/// disappeared.
pub fn compare_serve_reports(
    old: &ServeBenchReport,
    new: &ServeBenchReport,
    max_regression: f64,
) -> Result<String, String> {
    let mut lines = vec![format!(
        "{:<20} {:>12} {:>12} {:>8} {:>10} {:>10}",
        "bench", "old rps", "new rps", "ratio", "old shed", "new shed"
    )];
    let mut violations = Vec::new();
    for bench in &old.benches {
        match new.bench(&bench.name) {
            Some(candidate) => {
                let ratio = candidate.rps / bench.rps.max(f64::MIN_POSITIVE);
                lines.push(format!(
                    "{:<20} {:>12.0} {:>12.0} {:>8.2} {:>9.1}% {:>9.1}%",
                    bench.name,
                    bench.rps,
                    candidate.rps,
                    ratio,
                    bench.shed_rate * 100.0,
                    candidate.shed_rate * 100.0
                ));
                if candidate.rps * max_regression < bench.rps {
                    violations.push(format!(
                        "{}: {:.0} -> {:.0} rps ({:.2}x slowdown exceeds {max_regression}x)",
                        bench.name,
                        bench.rps,
                        candidate.rps,
                        bench.rps / candidate.rps.max(f64::MIN_POSITIVE)
                    ));
                }
                if candidate.shed_rate > bench.shed_rate + SHED_RATE_SLACK {
                    violations.push(format!(
                        "{}: shed rate {:.1}% -> {:.1}% (exceeds baseline + {:.0}% slack)",
                        bench.name,
                        bench.shed_rate * 100.0,
                        candidate.shed_rate * 100.0,
                        SHED_RATE_SLACK * 100.0
                    ));
                }
            }
            None => violations.push(format!("{}: missing from the new report", bench.name)),
        }
    }
    let table = lines.join("\n");
    if violations.is_empty() {
        Ok(table)
    } else {
        Err(format!("{table}\nregressions:\n  {}", violations.join("\n  ")))
    }
}

// ---------------------------------------------------------------------------
// Chaos mode
// ---------------------------------------------------------------------------

/// What a chaos run hits and with what client-side schedule seed.
///
/// The seed drives every client's misbehavior schedule (which requests
/// drip, abort, or disconnect mid-body) through per-client
/// `SplitMix64::new(seed + client)` streams, so a chaos run is replayable
/// from its printed seed. Pair it with a server started with
/// [`crate::FaultConfig::with_seed`] for deterministic faults on both
/// sides of the socket.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Seed of the per-client misbehavior streams.
    pub seed: u64,
    /// Client iterations to run (each iteration is one behavior draw and
    /// may send several requests, e.g. a pipelined burst).
    pub requests: usize,
    /// Concurrent chaos clients.
    pub clients: usize,
}

/// Tallies of one chaos run. The invariant the run checks: every 200 the
/// server returned carried the byte-identical body a fault-free server
/// would have produced ([`ChaosReport::mismatches`] must be zero); sheds,
/// disconnects, and aborts are expected traffic, not failures.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ChaosReport {
    /// Requests actually written to the server.
    pub attempts: usize,
    /// 200 responses whose bodies matched the fault-free reference.
    pub ok: usize,
    /// Overload sheds observed (503 with `Retry-After`).
    pub shed: usize,
    /// Degraded stale-memo 200s observed (`x-arrayflex-stale: 1`).
    pub stale: usize,
    /// Shed requests retried after the jittered backoff.
    pub retries: usize,
    /// Transport-level drops (connect failures, resets mid-response —
    /// expected under fault injection and client misbehavior).
    pub disconnects: usize,
    /// Requests the client deliberately abandoned (aborted pipelines,
    /// half-sent slowloris heads, mid-body hangups, vanished job
    /// submitters).
    pub aborts: usize,
    /// Async jobs submitted whose 202 the client actually read (vanished
    /// submitters that never read theirs count as aborts instead).
    pub jobs_submitted: usize,
    /// 200 responses whose bodies differed from the fault-free
    /// reference, plus unexpected statuses (500s): invariant violations.
    pub mismatches: usize,
}

impl ChaosReport {
    /// Whether the run upheld the chaos invariant: at least one verified
    /// 200 and zero wrong bodies or unexpected statuses.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.mismatches == 0 && self.ok > 0
    }

    /// Renders the tallies as a small human-readable table.
    #[must_use]
    pub fn text(&self) -> String {
        format!(
            "attempts: {}, ok: {}, shed: {} ({} retried), stale: {}\n\
             disconnects: {}, client aborts: {}, jobs submitted: {}, mismatches: {}",
            self.attempts,
            self.ok,
            self.shed,
            self.retries,
            self.stale,
            self.disconnects,
            self.aborts,
            self.jobs_submitted,
            self.mismatches
        )
    }
}

/// One chaos workload item: a request plus the body a fault-free server
/// returns for it.
struct ChaosItem {
    path: &'static str,
    body: String,
    expected: Vec<u8>,
}

/// The chaos workload: a few `/v1/plan` bodies (exercising the rendered
/// memo and its stale degraded path) and several distinct `/v1/simulate`
/// bodies (distinct seeds defeat coalescing, so concurrent clients
/// genuinely pressure the worker queue into shedding). Reference bodies
/// come from [`api::handle`] against a fresh default server state — the
/// true no-faults, no-concurrency answer.
fn chaos_items() -> Vec<ChaosItem> {
    let state = AppState::new(&ServerConfig::default());
    let mut bodies: Vec<(&'static str, String)> = vec![
        (
            "/v1/plan",
            r#"{"network":"resnet18","rows":64,"cols":64}"#.to_owned(),
        ),
        (
            "/v1/plan",
            r#"{"network":"resnet34","rows":128,"cols":128}"#.to_owned(),
        ),
        (
            "/v1/plan",
            r#"{"network":"resnet18","rows":32,"cols":32}"#.to_owned(),
        ),
    ];
    for seed in 1..=4u32 {
        bodies.push((
            "/v1/simulate",
            format!(r#"{{"rows":16,"cols":16,"k":2,"t":8,"n":48,"m":24,"seed":{seed}}}"#),
        ));
    }
    bodies
        .into_iter()
        .map(|(path, body)| {
            let response = api::handle(
                &state,
                &HttpRequest {
                    method: "POST".to_owned(),
                    path: path.to_owned(),
                    body: body.clone().into_bytes(),
                },
            );
            assert_eq!(response.status, 200, "chaos workload item must be valid");
            ChaosItem {
                path,
                body,
                expected: response.body,
            }
        })
        .collect()
}

/// Records one decoded response against its reference body.
fn chaos_verify(report: &mut ChaosReport, item: &ChaosItem, response: &ClientResponse) {
    if response.status == 200 {
        if response.stale {
            report.stale += 1;
        }
        // The core invariant: a 200 under faults is byte-identical to the
        // fault-free answer. Stale degraded responses included — planning
        // purity means the memo'd bytes are that same answer.
        if response.body == item.expected {
            report.ok += 1;
        } else {
            report.mismatches += 1;
        }
    } else if response.status == 503 && response.retry_after.is_some() {
        report.shed += 1;
    } else {
        // Well-formed requests may be served or shed, never anything
        // else; a 500 here is a caught handler panic leaking out.
        report.mismatches += 1;
    }
}

/// One well-behaved request with shed-retry: on a 503 the client honors
/// `Retry-After` (capped for test pacing) under jittered exponential
/// backoff, up to 3 retries.
fn chaos_request_with_retry(
    addr: SocketAddr,
    item: &ChaosItem,
    conn: &mut Option<PersistentClient>,
    rng: &mut SplitMix64,
    report: &mut ChaosReport,
) {
    for attempt in 0u32..4 {
        if conn.is_none() {
            match PersistentClient::connect(addr) {
                Ok(client) => *conn = Some(client),
                Err(_) => {
                    report.disconnects += 1;
                    return;
                }
            }
        }
        let client = conn.as_mut().expect("connected above");
        report.attempts += 1;
        match client.request("POST", item.path, Some(item.body.as_bytes())) {
            Ok(response) => {
                let shed = response.status == 503 && response.retry_after.is_some();
                chaos_verify(report, item, &response);
                if !shed || attempt == 3 {
                    return;
                }
                report.retries += 1;
                // Honor Retry-After (seconds), capped so saturated runs
                // still finish; exponential base with a little jitter
                // decorrelates the retrying clients.
                let cap = response.retry_after.unwrap_or(1).saturating_mul(1000).min(50);
                let backoff = (2u64 << attempt).min(cap) + rng.next_u64() % 3;
                std::thread::sleep(Duration::from_millis(backoff));
            }
            Err(_) => {
                report.disconnects += 1;
                *conn = None;
                return;
            }
        }
    }
}

/// A pipelined burst: `depth` requests written back to back, responses
/// verified in order.
fn chaos_pipelined_burst(
    addr: SocketAddr,
    items: &[ChaosItem],
    conn: &mut Option<PersistentClient>,
    rng: &mut SplitMix64,
    report: &mut ChaosReport,
) {
    if conn.is_none() {
        match PersistentClient::connect(addr) {
            Ok(client) => *conn = Some(client),
            Err(_) => {
                report.disconnects += 1;
                return;
            }
        }
    }
    let client = conn.as_mut().expect("connected above");
    let mut sent = Vec::with_capacity(4);
    for _ in 0..4 {
        let index = (rng.next_u64() as usize) % items.len();
        let item = &items[index];
        if client
            .send("POST", item.path, Some(item.body.as_bytes()))
            .is_err()
        {
            report.disconnects += 1;
            *conn = None;
            return;
        }
        report.attempts += 1;
        sent.push(index);
    }
    for index in sent {
        match client.recv() {
            Ok(response) => chaos_verify(report, &items[index], &response),
            Err(_) => {
                report.disconnects += 1;
                *conn = None;
                return;
            }
        }
    }
}

/// An aborted pipeline: three requests written on a throwaway connection,
/// one response read, then the connection dropped with two answers owed —
/// the server must clean up the dead slot without disturbing others.
fn chaos_aborted_pipeline(
    addr: SocketAddr,
    items: &[ChaosItem],
    rng: &mut SplitMix64,
    report: &mut ChaosReport,
) {
    let Ok(mut throwaway) = PersistentClient::connect(addr) else {
        report.disconnects += 1;
        return;
    };
    let mut sent = Vec::with_capacity(3);
    for _ in 0..3 {
        let index = (rng.next_u64() as usize) % items.len();
        let item = &items[index];
        if throwaway
            .send("POST", item.path, Some(item.body.as_bytes()))
            .is_err()
        {
            break;
        }
        report.attempts += 1;
        sent.push(index);
    }
    if let Some(&first) = sent.first() {
        match throwaway.recv() {
            Ok(response) => chaos_verify(report, &items[first], &response),
            Err(_) => report.disconnects += 1,
        }
    }
    report.aborts += 1;
}

/// A slowloris drip: the request head written in three chunks with sleeps
/// between them, then a coin flip between completing the request (the
/// parser must reassemble it correctly) and abandoning it mid-head (the
/// idle deadline must reap it without a worker ever seeing it).
fn chaos_slowloris(
    addr: SocketAddr,
    item: &ChaosItem,
    rng: &mut SplitMix64,
    report: &mut ChaosReport,
) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        report.disconnects += 1;
        return;
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let head = format!(
        "POST {} HTTP/1.1\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n",
        item.path,
        item.body.len()
    );
    let bytes = head.as_bytes();
    let third = bytes.len() / 3;
    for chunk in [&bytes[..third], &bytes[third..2 * third], &bytes[2 * third..]] {
        if stream.write_all(chunk).is_err() {
            report.disconnects += 1;
            return;
        }
        std::thread::sleep(Duration::from_millis(1 + rng.next_u64() % 2));
    }
    if rng.next_bool(0.5) {
        report.attempts += 1;
        if stream.write_all(item.body.as_bytes()).is_err() {
            report.disconnects += 1;
            return;
        }
        match client::read_response(&mut BufReader::new(stream)) {
            Ok(response) => chaos_verify(report, item, &response),
            Err(_) => report.disconnects += 1,
        }
    } else {
        report.aborts += 1;
    }
}

/// A mid-body hangup: head plus half the body, then the socket dropped.
/// The parser is left mid-request; the server must discard it without
/// dispatching a truncated body.
fn chaos_midbody_disconnect(addr: SocketAddr, item: &ChaosItem, report: &mut ChaosReport) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        report.disconnects += 1;
        return;
    };
    let head = format!(
        "POST {} HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
        item.path,
        item.body.len()
    );
    let half = item.body.len() / 2;
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(&item.body.as_bytes()[..half]);
    report.aborts += 1;
}

/// A vanishing tenant: submits an async `/v1/jobs` sweep under an
/// `x-arrayflex-tenant` header on a throwaway connection, then
/// disconnects — half the time without even reading the 202. Jobs are
/// detached from their submitting connection, so the server runs the
/// sweep to completion (or sheds the submit) regardless, and the orphaned
/// job must not stop shutdown from draining.
fn chaos_vanishing_tenant_job(
    addr: SocketAddr,
    rng: &mut SplitMix64,
    report: &mut ChaosReport,
) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        report.disconnects += 1;
        return;
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    // A tiny sweep (2 points) so orphaned jobs finish in milliseconds;
    // a handful of tenant names exercises the per-tenant bookkeeping.
    let tenant = rng.next_u64() % 4;
    let body = r#"{"array_sizes":[8,16],"networks":["mobilenet_v1"]}"#;
    let head = format!(
        "POST /v1/jobs HTTP/1.1\r\nhost: chaos\r\nx-arrayflex-tenant: chaos-{tenant}\r\n\
         content-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    report.attempts += 1;
    if stream.write_all(head.as_bytes()).is_err() || stream.write_all(body.as_bytes()).is_err() {
        report.disconnects += 1;
        return;
    }
    if rng.next_bool(0.5) {
        // Read the submit response, then vanish without ever polling
        // for the result.
        match client::read_response(&mut BufReader::new(stream)) {
            Ok(response) => match response.status {
                202 => report.jobs_submitted += 1,
                // Queue sheds and tenant caps are expected traffic.
                429 | 503 => report.shed += 1,
                _ => report.mismatches += 1,
            },
            Err(_) => report.disconnects += 1,
        }
    } else {
        // Vanish with the 202 still unread in the socket.
        report.aborts += 1;
    }
}

/// One chaos client's schedule, driven by its own seeded stream.
fn chaos_client(
    addr: SocketAddr,
    items: &[ChaosItem],
    mut rng: SplitMix64,
    claim: &impl Fn() -> bool,
) -> ChaosReport {
    let mut report = ChaosReport::default();
    let mut conn: Option<PersistentClient> = None;
    while claim() {
        let index = (rng.next_u64() as usize) % items.len();
        match rng.next_u64() % 9 {
            // Nearly half the schedule is well-behaved traffic — the
            // point is proving correct answers *under* chaos, so there
            // must be plenty of verified requests interleaved with the
            // abuse.
            0..=3 => chaos_request_with_retry(addr, &items[index], &mut conn, &mut rng, &mut report),
            4 => chaos_pipelined_burst(addr, items, &mut conn, &mut rng, &mut report),
            5 => chaos_aborted_pipeline(addr, items, &mut rng, &mut report),
            6 => chaos_slowloris(addr, &items[index], &mut rng, &mut report),
            7 => chaos_midbody_disconnect(addr, &items[index], &mut report),
            _ => chaos_vanishing_tenant_job(addr, &mut rng, &mut report),
        }
    }
    report
}

/// Runs the chaos workload: `clients` misbehaving clients share an
/// iteration budget and hammer the server with a deterministic mix of
/// honest requests, pipelined bursts, aborted pipelines, slowloris drips,
/// mid-body hangups, and vanishing tenant job submissions, verifying
/// every 200 against the fault-free reference.
///
/// # Panics
///
/// Panics if `clients` is zero or a chaos client thread panics.
#[must_use]
pub fn chaos_run(config: &ChaosConfig) -> ChaosReport {
    assert!(config.clients > 0, "chaos needs at least one client");
    let items = chaos_items();
    let remaining = AtomicUsize::new(config.requests);
    let reports: Vec<ChaosReport> = std::thread::scope(|scope| {
        let remaining = &remaining;
        let items = &items;
        #[allow(clippy::needless_collect)] // spawn-all-then-join, as in `run`
        let handles: Vec<_> = (0..config.clients)
            .map(|client_index| {
                let rng = SplitMix64::new(config.seed.wrapping_add(client_index as u64));
                scope.spawn(move || {
                    let claim = || {
                        remaining
                            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                                n.checked_sub(1)
                            })
                            .is_ok()
                    };
                    chaos_client(config.addr, items, rng, &claim)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("chaos client panicked"))
            .collect()
    });
    let mut total = ChaosReport::default();
    for report in reports {
        total.attempts += report.attempts;
        total.ok += report.ok;
        total.shed += report.shed;
        total.stale += report.stale;
        total.retries += report.retries;
        total.disconnects += report.disconnects;
        total.aborts += report.aborts;
        total.jobs_submitted += report.jobs_submitted;
        total.mismatches += report.mismatches;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, rps: f64) -> ServeBenchRecord {
        ServeBenchRecord {
            name: name.to_owned(),
            endpoint: "/v1/plan".to_owned(),
            mode: "close".to_owned(),
            requests: 100,
            clients: 4,
            rps,
            p50_us: 100,
            p99_us: 200,
            connect_p50_us: 30,
            errors: 0,
            sheds: 0,
            shed_rate: 0.0,
        }
    }

    fn report(benches: Vec<ServeBenchRecord>) -> ServeBenchReport {
        ServeBenchReport {
            schema: SERVE_BENCH_SCHEMA,
            benches,
        }
    }

    #[test]
    fn mode_labels_are_stable() {
        assert_eq!(ConnectionMode::Close.label(), "close");
        assert_eq!(ConnectionMode::KeepAlive.label(), "keepalive");
        assert_eq!(ConnectionMode::Pipeline(8).label(), "pipeline8");
    }

    #[test]
    fn serve_reports_round_trip_through_json() {
        let original = report(vec![record("plan_close", 4500.0)]);
        let json = serde_json::to_string_pretty(&original).unwrap();
        let decoded: ServeBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(decoded.schema, SERVE_BENCH_SCHEMA);
        assert_eq!(decoded.benches.len(), 1);
        assert_eq!(decoded.benches[0].name, "plan_close");
        assert!((decoded.benches[0].rps - 4500.0).abs() < 1e-9);
    }

    #[test]
    fn validation_catches_schema_errors_and_failures() {
        assert!(validate_serve_report(&report(vec![record("a", 100.0)])).is_ok());
        let mut wrong_schema = report(vec![record("a", 100.0)]);
        wrong_schema.schema += 1;
        assert!(validate_serve_report(&wrong_schema).is_err());
        assert!(validate_serve_report(&report(vec![])).is_err());
        let mut failed = report(vec![record("a", 100.0)]);
        failed.benches[0].errors = 1;
        assert!(validate_serve_report(&failed).is_err());
        let mut zero = report(vec![record("a", 0.0)]);
        zero.benches[0].rps = 0.0;
        assert!(validate_serve_report(&zero).is_err());
    }

    #[test]
    fn comparison_passes_noise_and_fails_regressions() {
        let old = report(vec![record("plan_close", 1000.0), record("plan_keepalive", 10000.0)]);
        // 20% slower everywhere: inside the 2.5x gate.
        let ok = report(vec![record("plan_close", 800.0), record("plan_keepalive", 8000.0)]);
        assert!(compare_serve_reports(&old, &ok, 2.5).is_ok());
        // 4x slower on one bench: a real regression.
        let bad = report(vec![record("plan_close", 250.0), record("plan_keepalive", 8000.0)]);
        let err = compare_serve_reports(&old, &bad, 2.5).unwrap_err();
        assert!(err.contains("plan_close"), "{err}");
        // A vanished bench is always a failure.
        let missing = report(vec![record("plan_close", 1000.0)]);
        let err = compare_serve_reports(&old, &missing, 2.5).unwrap_err();
        assert!(err.contains("plan_keepalive"), "{err}");
    }

    #[test]
    fn comparison_gates_shed_rate_alongside_rps() {
        let old = report(vec![record("plan_keepalive", 10000.0)]);
        // Shedding within the slack passes (noise / trivial overload).
        let mut ok = report(vec![record("plan_keepalive", 10000.0)]);
        ok.benches[0].sheds = 400;
        ok.benches[0].shed_rate = 0.04;
        assert!(compare_serve_reports(&old, &ok, 2.5).is_ok());
        // A server that "kept" its RPS by shedding 20% of requests fails.
        let mut bad = report(vec![record("plan_keepalive", 10000.0)]);
        bad.benches[0].sheds = 2000;
        bad.benches[0].shed_rate = 0.20;
        let err = compare_serve_reports(&old, &bad, 2.5).unwrap_err();
        assert!(err.contains("shed rate"), "{err}");
    }

    #[test]
    fn baselines_without_shed_fields_still_parse() {
        // Committed BENCH_serve.json files predate the shed fields; they
        // must decode with zero defaults rather than erroring.
        let legacy = r#"{"schema":1,"benches":[{"name":"plan_close",
            "endpoint":"/v1/plan","mode":"close","requests":100,
            "clients":4,"rps":4500.0,"p50_us":100,"p99_us":200,
            "connect_p50_us":30,"errors":0}]}"#;
        let decoded: ServeBenchReport = serde_json::from_str(legacy).unwrap();
        assert_eq!(decoded.benches[0].sheds, 0);
        assert!(decoded.benches[0].shed_rate.abs() < 1e-12);
        // And the new fields round-trip when present.
        let mut with = report(vec![record("plan_close", 4500.0)]);
        with.benches[0].sheds = 7;
        with.benches[0].shed_rate = 0.07;
        let json = serde_json::to_string(&with).unwrap();
        let back: ServeBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.benches[0].sheds, 7);
        assert!((back.benches[0].shed_rate - 0.07).abs() < 1e-12);
    }

    #[test]
    fn keepalive_speedup_reads_the_headline_ratio() {
        let report = report(vec![
            record("plan_close", 1000.0),
            record("plan_keepalive", 12000.0),
        ]);
        let speedup = report.keepalive_speedup().unwrap();
        assert!((speedup - 12.0).abs() < 1e-9);
        let reference = report.reference_speedup().unwrap();
        assert!((reference - 12000.0 / REFERENCE_CLOSE_RPS).abs() < 1e-9);
        assert!(report.bench("nope").is_none());
    }
}
