//! A loopback load generator for the planning service.
//!
//! Hammers one endpoint from a configurable number of client threads
//! (each issuing one request per connection, exactly like an external
//! client) and reports sustained throughput and latency percentiles. The
//! `loadgen` binary wraps [`run`]; the integration tests use it to assert
//! the acceptance criterion of ≥ 1000 requests with zero errors.

use crate::client;
use arrayflex::PlanCache;
use gemm::rng::SplitMix64;
use serde::Serialize;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// What to send, where, and how hard.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Path to `POST` to (or `GET` when `body` is `None`).
    pub path: String,
    /// JSON body (`None` issues `GET` requests instead).
    pub body: Option<String>,
    /// Total requests to issue.
    pub requests: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// When set, requests draw their body from a pool of distinct
    /// synthetic-network plan requests with zipfian popularity instead of
    /// repeating [`LoadgenConfig::body`] — so cache hit rates under
    /// realistic key skew are measured rather than assumed.
    pub zipf: Option<ZipfWorkload>,
}

impl LoadgenConfig {
    /// A plan-request load against `addr`: the default workload of the
    /// `loadgen` binary (ResNet-34 on a 128x128 array).
    #[must_use]
    pub fn plan_workload(addr: SocketAddr, requests: usize, clients: usize) -> Self {
        Self {
            addr,
            path: "/v1/plan".to_owned(),
            body: Some(r#"{"network":"resnet34","rows":128,"cols":128}"#.to_owned()),
            requests,
            clients,
            zipf: None,
        }
    }

    /// A `/v1/simulate` load against `addr`: a small seeded cycle-accurate
    /// cross-check (16x16 array, k = 2, an 8x48x24 GEMM), heavy enough to
    /// exercise the simulator pool but far below the route's size cap.
    #[must_use]
    pub fn simulate_workload(addr: SocketAddr, requests: usize, clients: usize) -> Self {
        Self {
            addr,
            path: "/v1/simulate".to_owned(),
            body: Some(r#"{"rows":16,"cols":16,"k":2,"t":8,"n":48,"m":24,"seed":7}"#.to_owned()),
            requests,
            clients,
            zipf: None,
        }
    }
}

/// A zipfian `/v1/plan` workload: a pool of distinct synthetic networks
/// whose request popularity follows Zipf(`s`), sampled deterministically
/// from `seed`.
#[derive(Debug, Clone)]
pub struct ZipfWorkload {
    /// Zipf skew exponent (`0.0` is uniform; web-like traces are ~1.0).
    pub s: f64,
    /// Number of distinct networks in the pool.
    pub pool: usize,
    /// Seed of the per-client sampling streams (client `i` samples from
    /// `SplitMix64::new(seed + i)`), so a fixed seed and client count
    /// reproduce the exact request mix.
    pub seed: u64,
    /// Array rows of every request in the pool.
    pub rows: u32,
    /// Array columns of every request in the pool.
    pub cols: u32,
}

impl ZipfWorkload {
    /// The pool of request bodies, one distinct inline synthetic network
    /// per popularity rank (rank 0 is the hottest key). Bodies depend only
    /// on `pool`/`rows`/`cols`, never on the seed.
    ///
    /// # Panics
    ///
    /// Panics if the pool is empty.
    #[must_use]
    pub fn bodies(&self) -> Vec<String> {
        assert!(self.pool > 0, "zipf workload needs a non-empty pool");
        (0..self.pool)
            .map(|index| {
                // Distinct per index (base_channels grows with the rank),
                // with some depth variety so plan sizes differ too.
                let network = cnn::models::synthetic_cnn(
                    1 + (index % 3) as u32,
                    4 + index,
                    16,
                );
                format!(
                    r#"{{"network":{},"rows":{},"cols":{}}}"#,
                    serde_json::to_string(&network).expect("networks serialize"),
                    self.rows,
                    self.cols
                )
            })
            .collect()
    }
}

/// Samples pool indices with Zipf(`s`) popularity: rank `r` (0-based) has
/// weight `1 / (r + 1)^s`. Sampling walks a precomputed CDF with
/// `partition_point`, so one draw is a `next_f64` plus a binary search.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is not finite.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf sampler needs at least one rank");
        assert!(s.is_finite(), "zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for rank in 1..=n {
            total += (rank as f64).powf(-s);
            cdf.push(total);
        }
        for bound in &mut cdf {
            *bound /= total;
        }
        Self { cdf }
    }

    /// Draws one rank in `0..n` from `rng`.
    #[must_use]
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        self.cdf
            .partition_point(|&bound| bound <= u)
            .min(self.cdf.len() - 1)
    }

    /// The probability of rank `r` (0-based).
    #[must_use]
    pub fn probability(&self, rank: usize) -> f64 {
        let below = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        self.cdf[rank] - below
    }
}

/// Aggregated result of one load-generation run.
#[derive(Debug, Clone, Serialize)]
pub struct LoadgenReport {
    /// Requests issued.
    pub requests: usize,
    /// Requests that failed (transport error or non-200 status).
    pub errors: usize,
    /// Client threads used.
    pub clients: usize,
    /// Wall-clock duration of the whole run in seconds.
    pub elapsed_s: f64,
    /// Sustained requests per second.
    pub rps: f64,
    /// Median request latency in microseconds.
    pub p50_us: u64,
    /// 90th-percentile latency in microseconds.
    pub p90_us: u64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: u64,
    /// Worst-case latency in microseconds.
    pub max_us: u64,
}

impl LoadgenReport {
    /// Renders the report as a small human-readable table.
    #[must_use]
    pub fn text(&self) -> String {
        format!(
            "requests: {} ({} errors), clients: {}\n\
             elapsed:  {:.3} s ({:.0} req/s)\n\
             latency:  p50 {} us, p90 {} us, p99 {} us, max {} us",
            self.requests,
            self.errors,
            self.clients,
            self.elapsed_s,
            self.rps,
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.max_us
        )
    }
}

/// Plan-cache counters read after a run (present when `loadgen` owned the
/// in-process server and could read its cache directly).
#[derive(Debug, Clone, Serialize)]
pub struct CacheReport {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to plan.
    pub misses: u64,
    /// Fraction of lookups served from the cache.
    pub hit_rate: f64,
    /// Plans resident at the end of the run.
    pub entries: usize,
    /// Estimated resident bytes at the end of the run.
    pub bytes: usize,
    /// Plans evicted by capacity or byte-budget pressure.
    pub evictions: u64,
    /// Plans expired by the write-TTL.
    pub expirations: u64,
}

impl CacheReport {
    /// Reads the counters of `cache` as they stand now.
    #[must_use]
    pub fn scrape(cache: &PlanCache) -> Self {
        Self {
            hits: cache.hits(),
            misses: cache.misses(),
            hit_rate: cache.hit_rate(),
            entries: cache.len(),
            bytes: cache.bytes(),
            evictions: cache.evictions(),
            expirations: cache.expirations(),
        }
    }

    /// Renders the counters as one human-readable line.
    #[must_use]
    pub fn text(&self) -> String {
        format!(
            "cache:    {} hits / {} misses ({:.1}% hit rate), {} entries, {} bytes, \
             {} evictions, {} expirations",
            self.hits,
            self.misses,
            self.hit_rate * 100.0,
            self.entries,
            self.bytes,
            self.evictions,
            self.expirations
        )
    }
}

/// The per-endpoint reports of one `loadgen` invocation: the planning
/// route and the (pooled) cycle-accurate simulation route, so service-side
/// wins on either path show up in the same JSON document.
#[derive(Debug, Clone, Serialize)]
pub struct CombinedReport {
    /// The `/v1/plan` load.
    pub plan: LoadgenReport,
    /// The `/v1/simulate` load.
    pub simulate: LoadgenReport,
    /// Plan-cache counters of the in-process server (`None` when the load
    /// targeted a remote address).
    pub cache: Option<CacheReport>,
}

impl CombinedReport {
    /// Total failed requests across both endpoints.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.plan.errors + self.simulate.errors
    }

    /// Renders both endpoint reports as human-readable tables.
    #[must_use]
    pub fn text(&self) -> String {
        let mut out = format!(
            "POST /v1/plan\n{}\nPOST /v1/simulate\n{}",
            self.plan.text(),
            self.simulate.text()
        );
        if let Some(cache) = &self.cache {
            out.push('\n');
            out.push_str(&cache.text());
        }
        out
    }
}

/// Runs the load: `clients` threads share a global request budget and each
/// issues sequential one-connection-per-request calls until it is spent.
///
/// A `requests` count of zero skips the load entirely and returns an
/// all-zero report (so callers can opt out of one endpoint of a combined
/// run, e.g. `loadgen --sim-requests 0`).
///
/// # Panics
///
/// Panics if `clients` is zero.
#[must_use]
pub fn run(config: &LoadgenConfig) -> LoadgenReport {
    assert!(config.clients > 0, "loadgen needs at least one client");
    if config.requests == 0 {
        return LoadgenReport {
            requests: 0,
            errors: 0,
            clients: config.clients,
            elapsed_s: 0.0,
            rps: 0.0,
            p50_us: 0,
            p90_us: 0,
            p99_us: 0,
            max_us: 0,
        };
    }
    // A zipfian workload pre-renders its body pool once; every client then
    // samples ranks from its own seeded stream, so the request mix is a
    // pure function of (seed, clients, requests).
    let zipf = config
        .zipf
        .as_ref()
        .map(|z| (z.bodies(), ZipfSampler::new(z.pool, z.s), z.seed));
    let remaining = AtomicUsize::new(config.requests);
    let started = Instant::now();
    let mut per_client: Vec<(Vec<u64>, usize)> = std::thread::scope(|scope| {
        let remaining = &remaining;
        let zipf = &zipf;
        // The collect is load-bearing: every client thread must be spawned
        // before the first join, otherwise the load degenerates to one
        // sequential client at a time.
        #[allow(clippy::needless_collect)]
        let handles: Vec<_> = (0..config.clients)
            .map(|client_index| {
                scope.spawn(move || {
                    let mut rng = zipf
                        .as_ref()
                        .map(|(_, _, seed)| SplitMix64::new(seed.wrapping_add(client_index as u64)));
                    let mut latencies = Vec::new();
                    let mut errors = 0usize;
                    loop {
                        // Claim one unit of the shared budget.
                        let claimed = remaining
                            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                                n.checked_sub(1)
                            })
                            .is_ok();
                        if !claimed {
                            break;
                        }
                        let body = match (zipf, &mut rng) {
                            (Some((bodies, sampler, _)), Some(rng)) => {
                                Some(&bodies[sampler.sample(rng)])
                            }
                            _ => config.body.as_ref(),
                        };
                        let request_started = Instant::now();
                        let outcome = match body {
                            Some(body) => client::post_json(config.addr, &config.path, body),
                            None => client::get(config.addr, &config.path),
                        };
                        let micros = u64::try_from(request_started.elapsed().as_micros())
                            .unwrap_or(u64::MAX);
                        match outcome {
                            Ok(response) if response.status == 200 => latencies.push(micros),
                            _ => errors += 1,
                        }
                    }
                    (latencies, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("loadgen client panicked"))
            .collect()
    });
    let elapsed_s = started.elapsed().as_secs_f64();

    let mut latencies: Vec<u64> = Vec::with_capacity(config.requests);
    let mut errors = 0usize;
    for (client_latencies, client_errors) in &mut per_client {
        latencies.append(client_latencies);
        errors += *client_errors;
    }
    latencies.sort_unstable();
    let percentile = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let rank = ((latencies.len() as f64) * p).ceil() as usize;
        latencies[rank.clamp(1, latencies.len()) - 1]
    };
    LoadgenReport {
        requests: config.requests,
        errors,
        clients: config.clients,
        elapsed_s,
        rps: config.requests as f64 / elapsed_s.max(f64::MIN_POSITIVE),
        p50_us: percentile(0.50),
        p90_us: percentile(0.90),
        p99_us: percentile(0.99),
        max_us: latencies.last().copied().unwrap_or(0),
    }
}
