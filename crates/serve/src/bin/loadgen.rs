//! The `loadgen` binary: hammer the planning service over loopback and
//! report sustained RPS and latency percentiles for both the `/v1/plan`
//! and the `/v1/simulate` endpoint (so wins on either service path — the
//! plan cache, the pooled simulator — are visible side by side).
//!
//! ```text
//! cargo run --release -p arrayflex-serve --bin loadgen -- [--addr HOST:PORT]
//!     [--requests N] [--sim-requests N] [--clients N] [--network NAME]
//!     [--rows N] [--cols N] [--zipf S] [--zipf-pool N] [--seed N]
//!     [--cache N] [--cache-ttl SECS] [--cache-bytes BYTES] [--json]
//!     [--keep-alive] [--pipeline N] [--legacy-serve]
//!     [--bench OUT.json [--quick]]
//!     [--compare OLD.json NEW.json [--max-regression FACTOR]]
//! ```
//!
//! Without `--addr`, an in-process server is spawned on an ephemeral
//! loopback port (with `--server-threads N` workers), so the default
//! invocation measures the full client-to-server round trip on one
//! machine with zero setup. `--json` emits one document with a `plan` and
//! a `simulate` report, each carrying RPS, p50/p90/p99/max request
//! latency and separate connection-setup percentiles; in-process runs
//! also report the server's plan-cache counters.
//!
//! `--keep-alive` reuses one connection per client; `--pipeline N` also
//! writes up to `N` requests back to back before reading responses.
//! `--legacy-serve` runs the in-process server on the legacy
//! thread-per-connection path instead of the event loop.
//!
//! `--bench OUT.json` ignores the ad-hoc load flags and runs the fixed
//! serving benchmark matrix (close / keep-alive / pipelined, per
//! endpoint) against an in-process event-loop server, writing the
//! committed-baseline document (`BENCH_serve.json` format). `--compare
//! OLD NEW` gates a fresh report against a committed baseline exactly
//! like `bench_baseline --compare`: non-zero exit if any bench regressed
//! beyond `--max-regression` (default 2.5x on this noisy end-to-end
//! path) or disappeared.
//!
//! `--zipf S` replaces the fixed `/v1/plan` body with a pool of
//! `--zipf-pool` distinct synthetic networks whose popularity follows
//! Zipf(S), sampled deterministically from `--seed` — the recipe for
//! measuring cache hit rates under realistic key skew (see
//! EXPERIMENTS.md). `--cache`, `--cache-ttl` and `--cache-bytes` shape the
//! in-process server's plan cache so eviction and expiry behaviour shows
//! up in the reported counters.
//!
//! `--chaos` runs the deterministic fault-injection harness instead of a
//! throughput load: an in-process server armed with
//! `FaultConfig::with_seed(--seed)` and a tiny worker queue, hammered by
//! `--clients` misbehaving clients (slowloris drips, aborted pipelines,
//! mid-body hangups, shed-retry loops honoring `Retry-After`) whose
//! schedules also derive from `--seed`. Every 200 is verified
//! byte-identical against the fault-free reference; non-zero exit on any
//! mismatch, any server-side panic, or zero verified responses. The seed
//! is printed so any run replays exactly (see EXPERIMENTS.md).

use arrayflex_serve::client::PersistentClient;
use arrayflex_serve::http::{serve, ServerConfig};
use arrayflex_serve::loadgen::{
    bench_suite, chaos_run, compare_serve_reports, run, validate_serve_report, CacheReport,
    ChaosConfig, CombinedReport, ConnectionMode, LoadgenConfig, ServeBenchReport, ZipfWorkload,
};
use arrayflex_serve::FaultConfig;
use std::net::SocketAddr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut addr: Option<SocketAddr> = None;
    let mut requests = 1000usize;
    let mut sim_requests = 200usize;
    let mut clients = 4usize;
    let mut server_threads = 4usize;
    let mut network = "resnet34".to_owned();
    let mut rows = 128u32;
    let mut cols = 128u32;
    let mut zipf: Option<f64> = None;
    let mut zipf_pool = 32usize;
    let mut seed = 42u64;
    let mut cache_capacity: Option<usize> = None;
    let mut cache_ttl: Option<u64> = None;
    let mut cache_bytes: Option<usize> = None;
    let mut json = false;
    let mut mode = ConnectionMode::Close;
    let mut legacy = false;
    let mut bench_out: Option<String> = None;
    let mut quick = false;
    let mut compare: Option<(String, String)> = None;
    let mut max_regression = 2.5f64;
    let mut smoke: Option<SocketAddr> = None;
    let mut chaos = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => addr = Some(value_of("--addr")?.parse()?),
            "--requests" => requests = value_of("--requests")?.parse()?,
            "--sim-requests" => sim_requests = value_of("--sim-requests")?.parse()?,
            "--clients" => clients = value_of("--clients")?.parse()?,
            "--server-threads" => server_threads = value_of("--server-threads")?.parse()?,
            "--network" => network = value_of("--network")?,
            "--rows" => rows = value_of("--rows")?.parse()?,
            "--cols" => cols = value_of("--cols")?.parse()?,
            "--zipf" => zipf = Some(value_of("--zipf")?.parse()?),
            "--zipf-pool" => zipf_pool = value_of("--zipf-pool")?.parse()?,
            "--seed" => seed = value_of("--seed")?.parse()?,
            "--cache" => cache_capacity = Some(value_of("--cache")?.parse()?),
            "--cache-ttl" => cache_ttl = Some(value_of("--cache-ttl")?.parse()?),
            "--cache-bytes" => cache_bytes = Some(value_of("--cache-bytes")?.parse()?),
            "--json" => json = true,
            "--keep-alive" => mode = ConnectionMode::KeepAlive,
            "--pipeline" => mode = ConnectionMode::Pipeline(value_of("--pipeline")?.parse()?),
            "--legacy-serve" => legacy = true,
            "--bench" => bench_out = Some(value_of("--bench")?),
            "--quick" => quick = true,
            "--compare" => {
                let old = value_of("--compare")?;
                let new = args.next().ok_or("--compare needs OLD.json NEW.json")?;
                compare = Some((old, new));
            }
            "--max-regression" => {
                max_regression = value_of("--max-regression")?.parse()?;
                if !(max_regression.is_finite() && max_regression >= 1.0) {
                    return Err("--max-regression factor must be >= 1.0".into());
                }
            }
            "--keepalive-smoke" => smoke = Some(value_of("--keepalive-smoke")?.parse()?),
            "--chaos" => chaos = true,
            "--help" | "-h" => {
                println!(
                    "usage: loadgen [--addr HOST:PORT] [--requests N] [--sim-requests N] \
                     [--clients N] [--server-threads N] [--network NAME] [--rows N] \
                     [--cols N] [--zipf S] [--zipf-pool N] [--seed N] [--cache N] \
                     [--cache-ttl SECS] [--cache-bytes BYTES] [--json] [--keep-alive] \
                     [--pipeline N] [--legacy-serve] [--bench OUT.json [--quick]] \
                     [--compare OLD NEW [--max-regression FACTOR]] \
                     [--keepalive-smoke HOST:PORT] [--chaos]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown flag {other}").into()),
        }
    }

    // --compare gates two existing reports and touches no server at all.
    if let Some((old_path, new_path)) = compare {
        let old: ServeBenchReport = serde_json::from_str(&std::fs::read_to_string(&old_path)?)?;
        let new: ServeBenchReport = serde_json::from_str(&std::fs::read_to_string(&new_path)?)?;
        validate_serve_report(&old).map_err(|e| format!("{old_path}: {e}"))?;
        validate_serve_report(&new).map_err(|e| format!("{new_path}: {e}"))?;
        match compare_serve_reports(&old, &new, max_regression) {
            Ok(table) => {
                println!("{table}");
                println!("serve bench comparison OK (max regression {max_regression}x)");
                return Ok(());
            }
            Err(report) => return Err(format!("serve bench regression:\n{report}").into()),
        }
    }

    // --keepalive-smoke exercises one persistent connection against a
    // running server: two sequential requests, then a pipelined pair.
    if let Some(addr) = smoke {
        return keepalive_smoke(addr);
    }

    // --chaos spawns its own fault-armed in-process server (--addr is
    // not honored: the faults must be injected server-side).
    if chaos {
        return chaos_mode(seed, requests, clients, json);
    }

    // Spawn an in-process server unless the caller points at a remote one.
    let in_process = match addr {
        Some(_) => None,
        None => {
            let mut config = ServerConfig {
                threads: server_threads,
                legacy,
                cache_ttl: cache_ttl.map(std::time::Duration::from_secs),
                cache_max_bytes: cache_bytes,
                ..ServerConfig::default()
            };
            if let Some(capacity) = cache_capacity {
                config.cache_capacity = capacity;
            }
            let handle = serve(config)?;
            addr = Some(handle.addr());
            Some(handle)
        }
    };
    let addr = addr.expect("an address is always set by now");

    // --bench runs the fixed matrix and writes the baseline document.
    if let Some(out_path) = bench_out {
        let report = bench_suite(addr, quick);
        validate_serve_report(&report)?;
        std::fs::write(&out_path, serde_json::to_string_pretty(&report)? + "\n")?;
        for bench in &report.benches {
            println!(
                "{:<20} {:>10.0} rps  p50 {:>6} us  p99 {:>7} us",
                bench.name, bench.rps, bench.p50_us, bench.p99_us
            );
        }
        if let Some(speedup) = report.keepalive_speedup() {
            println!("keep-alive speedup over close mode: {speedup:.1}x");
        }
        if let Some(speedup) = report.reference_speedup() {
            println!(
                "keep-alive speedup over the committed {:.1}k/s close-mode reference: {speedup:.1}x",
                arrayflex_serve::loadgen::REFERENCE_CLOSE_RPS / 1000.0
            );
        }
        println!("wrote {out_path}");
        if let Some(handle) = in_process {
            handle.shutdown();
        }
        return Ok(());
    }

    let mut plan_config = LoadgenConfig::plan_workload(addr, requests, clients);
    plan_config.mode = mode;
    plan_config.body = Some(format!(
        r#"{{"network":"{network}","rows":{rows},"cols":{cols}}}"#
    ));
    plan_config.zipf = zipf.map(|s| ZipfWorkload {
        s,
        pool: zipf_pool,
        seed,
        rows,
        cols,
    });
    let mut sim_config = LoadgenConfig::simulate_workload(addr, sim_requests, clients);
    sim_config.mode = mode;
    let report = CombinedReport {
        plan: run(&plan_config),
        simulate: run(&sim_config),
        cache: in_process
            .as_ref()
            .map(|handle| CacheReport::scrape(handle.state().cache())),
    };
    if json {
        println!("{}", serde_json::to_string_pretty(&report)?);
    } else {
        match zipf {
            Some(s) => println!(
                "loadgen @ http://{addr} (zipf s={s}, pool {zipf_pool}, seed {seed}, {rows}x{cols})"
            ),
            None => println!("loadgen @ http://{addr} ({network}, {rows}x{cols})"),
        }
        println!("{}", report.text());
    }
    if let Some(handle) = in_process {
        handle.shutdown();
    }
    if report.errors() > 0 {
        let total = requests + sim_requests;
        return Err(format!("{} of {total} requests failed", report.errors()).into());
    }
    Ok(())
}

/// The chaos harness behind `loadgen --chaos` (used by
/// `scripts/chaos_smoke.sh`): a fault-armed in-process server with a
/// deliberately tiny worker queue, a seeded misbehaving client fleet, and
/// a byte-identity check on every 200. Exits non-zero on any mismatch,
/// any server-side panic, or a run that verified nothing.
fn chaos_mode(
    seed: u64,
    requests: usize,
    clients: usize,
    json: bool,
) -> Result<(), Box<dyn std::error::Error>> {
    let config = ServerConfig {
        // Two workers and a 4-deep queue saturate under the chaos fleet,
        // so the shed, stale-serve, and retry paths all see real traffic.
        threads: 2,
        queue_limit: 4,
        faults: Some(FaultConfig::with_seed(seed)),
        ..ServerConfig::default()
    };
    let handle = serve(config)?;
    println!("chaos seed: {seed}");
    let report = chaos_run(&ChaosConfig {
        addr: handle.addr(),
        seed,
        requests,
        clients,
    });
    let panics = handle.state().metrics().panics();
    let sheds = handle.state().metrics().total_sheds();
    handle.shutdown();
    if json {
        println!("{}", serde_json::to_string_pretty(&report)?);
    } else {
        println!("{}", report.text());
        println!("server: {sheds} sheds, {panics} panics");
    }
    if panics > 0 {
        return Err(format!("server caught {panics} handler panics under chaos").into());
    }
    if report.mismatches > 0 {
        return Err(format!(
            "{} responses diverged from the fault-free reference (seed {seed})",
            report.mismatches
        )
        .into());
    }
    if report.ok == 0 {
        return Err(format!("chaos run verified no responses at all (seed {seed})").into());
    }
    println!(
        "chaos OK: {} byte-identical 200s, {} sheds honored, seed {seed} replays this run",
        report.ok, report.shed
    );
    Ok(())
}

/// The keep-alive smoke check used by `scripts/serve_smoke.sh`: one
/// persistent connection serving two sequential requests and then a
/// pipelined pair, all of which must come back 200 and in order.
fn keepalive_smoke(addr: SocketAddr) -> Result<(), Box<dyn std::error::Error>> {
    let mut client = PersistentClient::connect(addr)?;
    for _ in 0..2 {
        let response = client.request("GET", "/healthz", None)?;
        if response.status != 200 {
            return Err(format!("sequential keep-alive request got {}", response.status).into());
        }
    }
    client.send("GET", "/healthz", None)?;
    client.send("GET", "/metrics", None)?;
    let first = client.recv()?;
    let second = client.recv()?;
    if first.status != 200 || second.status != 200 {
        return Err(format!(
            "pipelined pair got {} and {}",
            first.status, second.status
        )
        .into());
    }
    if !first.text()?.contains("\"status\":\"ok\"")
        || !second.text()?.contains("arrayflex_serve_requests_total")
    {
        return Err("pipelined responses arrived out of order".into());
    }
    println!("keep-alive smoke OK: 2 sequential + 2 pipelined requests on one connection");
    Ok(())
}
