//! The `loadgen` binary: hammer the planning service over loopback and
//! report sustained RPS and latency percentiles for both the `/v1/plan`
//! and the `/v1/simulate` endpoint (so wins on either service path — the
//! plan cache, the pooled simulator — are visible side by side).
//!
//! ```text
//! cargo run --release -p arrayflex-serve --bin loadgen -- [--addr HOST:PORT]
//!     [--requests N] [--sim-requests N] [--clients N] [--network NAME]
//!     [--rows N] [--cols N] [--zipf S] [--zipf-pool N] [--seed N]
//!     [--cache N] [--cache-ttl SECS] [--cache-bytes BYTES] [--json]
//! ```
//!
//! Without `--addr`, an in-process server is spawned on an ephemeral
//! loopback port (with `--server-threads N` workers), so the default
//! invocation measures the full client-to-server round trip on one
//! machine with zero setup. `--json` emits one document with a `plan` and
//! a `simulate` report, each carrying RPS and p50/p90/p99/max latency;
//! in-process runs also report the server's plan-cache counters.
//!
//! `--zipf S` replaces the fixed `/v1/plan` body with a pool of
//! `--zipf-pool` distinct synthetic networks whose popularity follows
//! Zipf(S), sampled deterministically from `--seed` — the recipe for
//! measuring cache hit rates under realistic key skew (see
//! EXPERIMENTS.md). `--cache`, `--cache-ttl` and `--cache-bytes` shape the
//! in-process server's plan cache so eviction and expiry behaviour shows
//! up in the reported counters.

use arrayflex_serve::http::{serve, ServerConfig};
use arrayflex_serve::loadgen::{run, CacheReport, CombinedReport, LoadgenConfig, ZipfWorkload};
use std::net::SocketAddr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut addr: Option<SocketAddr> = None;
    let mut requests = 1000usize;
    let mut sim_requests = 200usize;
    let mut clients = 4usize;
    let mut server_threads = 4usize;
    let mut network = "resnet34".to_owned();
    let mut rows = 128u32;
    let mut cols = 128u32;
    let mut zipf: Option<f64> = None;
    let mut zipf_pool = 32usize;
    let mut seed = 42u64;
    let mut cache_capacity: Option<usize> = None;
    let mut cache_ttl: Option<u64> = None;
    let mut cache_bytes: Option<usize> = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => addr = Some(value_of("--addr")?.parse()?),
            "--requests" => requests = value_of("--requests")?.parse()?,
            "--sim-requests" => sim_requests = value_of("--sim-requests")?.parse()?,
            "--clients" => clients = value_of("--clients")?.parse()?,
            "--server-threads" => server_threads = value_of("--server-threads")?.parse()?,
            "--network" => network = value_of("--network")?,
            "--rows" => rows = value_of("--rows")?.parse()?,
            "--cols" => cols = value_of("--cols")?.parse()?,
            "--zipf" => zipf = Some(value_of("--zipf")?.parse()?),
            "--zipf-pool" => zipf_pool = value_of("--zipf-pool")?.parse()?,
            "--seed" => seed = value_of("--seed")?.parse()?,
            "--cache" => cache_capacity = Some(value_of("--cache")?.parse()?),
            "--cache-ttl" => cache_ttl = Some(value_of("--cache-ttl")?.parse()?),
            "--cache-bytes" => cache_bytes = Some(value_of("--cache-bytes")?.parse()?),
            "--json" => json = true,
            "--help" | "-h" => {
                println!(
                    "usage: loadgen [--addr HOST:PORT] [--requests N] [--sim-requests N] \
                     [--clients N] [--server-threads N] [--network NAME] [--rows N] \
                     [--cols N] [--zipf S] [--zipf-pool N] [--seed N] [--cache N] \
                     [--cache-ttl SECS] [--cache-bytes BYTES] [--json]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown flag {other}").into()),
        }
    }

    // Spawn an in-process server unless the caller points at a remote one.
    let in_process = match addr {
        Some(_) => None,
        None => {
            let mut config = ServerConfig {
                threads: server_threads,
                cache_ttl: cache_ttl.map(std::time::Duration::from_secs),
                cache_max_bytes: cache_bytes,
                ..ServerConfig::default()
            };
            if let Some(capacity) = cache_capacity {
                config.cache_capacity = capacity;
            }
            let handle = serve(config)?;
            addr = Some(handle.addr());
            Some(handle)
        }
    };
    let addr = addr.expect("an address is always set by now");

    let mut plan_config = LoadgenConfig::plan_workload(addr, requests, clients);
    plan_config.body = Some(format!(
        r#"{{"network":"{network}","rows":{rows},"cols":{cols}}}"#
    ));
    plan_config.zipf = zipf.map(|s| ZipfWorkload {
        s,
        pool: zipf_pool,
        seed,
        rows,
        cols,
    });
    let sim_config = LoadgenConfig::simulate_workload(addr, sim_requests, clients);
    let report = CombinedReport {
        plan: run(&plan_config),
        simulate: run(&sim_config),
        cache: in_process
            .as_ref()
            .map(|handle| CacheReport::scrape(handle.state().cache())),
    };
    if json {
        println!("{}", serde_json::to_string_pretty(&report)?);
    } else {
        match zipf {
            Some(s) => println!(
                "loadgen @ http://{addr} (zipf s={s}, pool {zipf_pool}, seed {seed}, {rows}x{cols})"
            ),
            None => println!("loadgen @ http://{addr} ({network}, {rows}x{cols})"),
        }
        println!("{}", report.text());
    }
    if let Some(handle) = in_process {
        handle.shutdown();
    }
    if report.errors() > 0 {
        let total = requests + sim_requests;
        return Err(format!("{} of {total} requests failed", report.errors()).into());
    }
    Ok(())
}
