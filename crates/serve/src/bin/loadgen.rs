//! The `loadgen` binary: hammer the planning service over loopback and
//! report sustained RPS and latency percentiles for both the `/v1/plan`
//! and the `/v1/simulate` endpoint (so wins on either service path — the
//! plan cache, the pooled simulator — are visible side by side).
//!
//! ```text
//! cargo run --release -p arrayflex-serve --bin loadgen -- [--addr HOST:PORT]
//!     [--requests N] [--sim-requests N] [--clients N] [--network NAME]
//!     [--rows N] [--cols N] [--json]
//! ```
//!
//! Without `--addr`, an in-process server is spawned on an ephemeral
//! loopback port (with `--server-threads N` workers), so the default
//! invocation measures the full client-to-server round trip on one
//! machine with zero setup. `--json` emits one document with a `plan` and
//! a `simulate` report, each carrying RPS and p50/p90/p99/max latency.

use arrayflex_serve::http::{serve, ServerConfig};
use arrayflex_serve::loadgen::{run, CombinedReport, LoadgenConfig};
use std::net::SocketAddr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut addr: Option<SocketAddr> = None;
    let mut requests = 1000usize;
    let mut sim_requests = 200usize;
    let mut clients = 4usize;
    let mut server_threads = 4usize;
    let mut network = "resnet34".to_owned();
    let mut rows = 128u32;
    let mut cols = 128u32;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => addr = Some(value_of("--addr")?.parse()?),
            "--requests" => requests = value_of("--requests")?.parse()?,
            "--sim-requests" => sim_requests = value_of("--sim-requests")?.parse()?,
            "--clients" => clients = value_of("--clients")?.parse()?,
            "--server-threads" => server_threads = value_of("--server-threads")?.parse()?,
            "--network" => network = value_of("--network")?,
            "--rows" => rows = value_of("--rows")?.parse()?,
            "--cols" => cols = value_of("--cols")?.parse()?,
            "--json" => json = true,
            "--help" | "-h" => {
                println!(
                    "usage: loadgen [--addr HOST:PORT] [--requests N] [--sim-requests N] \
                     [--clients N] [--server-threads N] [--network NAME] [--rows N] \
                     [--cols N] [--json]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown flag {other}").into()),
        }
    }

    // Spawn an in-process server unless the caller points at a remote one.
    let in_process = match addr {
        Some(_) => None,
        None => {
            let handle = serve(ServerConfig {
                threads: server_threads,
                ..ServerConfig::default()
            })?;
            addr = Some(handle.addr());
            Some(handle)
        }
    };
    let addr = addr.expect("an address is always set by now");

    let mut plan_config = LoadgenConfig::plan_workload(addr, requests, clients);
    plan_config.body = Some(format!(
        r#"{{"network":"{network}","rows":{rows},"cols":{cols}}}"#
    ));
    let sim_config = LoadgenConfig::simulate_workload(addr, sim_requests, clients);
    let report = CombinedReport {
        plan: run(&plan_config),
        simulate: run(&sim_config),
    };
    if json {
        println!("{}", serde_json::to_string_pretty(&report)?);
    } else {
        println!("loadgen @ http://{addr} ({network}, {rows}x{cols})");
        println!("{}", report.text());
    }
    if let Some(handle) = in_process {
        handle.shutdown();
    }
    if report.errors() > 0 {
        let total = requests + sim_requests;
        return Err(format!("{} of {total} requests failed", report.errors()).into());
    }
    Ok(())
}
