//! The `serve` binary: run the ArrayFlex planning/simulation service.
//!
//! ```text
//! cargo run --release -p arrayflex-serve --bin serve -- [--addr 127.0.0.1:8080]
//!     [--threads N] [--loops N] [--gather-window-us N] [--legacy-serve]
//!     [--cache N] [--max-body BYTES] [--cache-ttl SECS]
//!     [--cache-bytes BYTES] [--cache-snapshot PATH] [--snapshot-interval-ms N]
//!     [--log]
//! ```
//!
//! The default serving path is the keep-alive event loop: `--loops N`
//! sets the number of event-loop threads (0 auto-detects) and
//! `--threads N` sizes the handler worker pool behind them.
//! `--gather-window-us N` turns on `/v1/simulate` batch admission: the
//! first simulate request of an array configuration waits up to N
//! microseconds for same-configuration requests, then the group runs as
//! one pooled batch. `--legacy-serve` falls back to the
//! thread-per-connection path (one request per connection).
//!
//! `--cache-ttl` expires cached plans that long after they were computed;
//! `--cache-bytes` bounds the cache by estimated resident bytes (LRU-first
//! eviction) on top of the `--cache` entry count; `--cache-snapshot` warms
//! the cache from PATH at startup and keeps PATH current (atomic rewrite
//! whenever the resident set changed, checked every
//! `--snapshot-interval-ms`); `--log` emits one structured log line per
//! request on stdout.
//!
//! Overload and resilience knobs: `--queue-limit N` bounds the worker
//! queue — beyond it requests are shed with a structured 503 +
//! `Retry-After` (0 disables shedding); `--request-deadline-ms N` answers
//! work that queued longer than N milliseconds with a 503 instead of
//! computing a response nobody is waiting for; `--fault-seed N` arms the
//! deterministic fault-injection plan (injected EINTR, short reads/writes,
//! resets, spurious wakeups — for chaos testing only, never production).
//!
//! Jobs and tenants: `--job-dir PATH` makes `/v1/jobs` crash-safe — every
//! completed sweep point checkpoints to PATH, and a restart with the same
//! PATH resumes incomplete jobs (the final result is byte-identical to an
//! uninterrupted run); `--tenant-rate N` admits at most N requests/second
//! per `x-arrayflex-tenant` value (burst `--tenant-burst`, excess answered
//! 429 + `Retry-After`); `--tenant-max-jobs N` caps concurrently running
//! jobs per tenant (0 = uncapped).
//!
//! `--addr 127.0.0.1:0` binds an ephemeral port; the chosen address is
//! printed on the first line of stdout (`listening on http://...`), which
//! the CI smoke test parses.

use arrayflex_serve::http::{serve, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = ServerConfig {
        // The library default is an ephemeral port (for tests); the
        // binary binds the README's quickstart port unless overridden.
        addr: "127.0.0.1:8080".to_owned(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => config.addr = value_of("--addr")?,
            "--threads" => config.threads = value_of("--threads")?.parse()?,
            "--loops" => config.event_loops = value_of("--loops")?.parse()?,
            "--gather-window-us" => {
                config.gather_window = std::time::Duration::from_micros(
                    value_of("--gather-window-us")?.parse()?,
                );
            }
            "--legacy-serve" => config.legacy = true,
            "--cache" => config.cache_capacity = value_of("--cache")?.parse()?,
            "--max-body" => config.max_body_bytes = value_of("--max-body")?.parse()?,
            "--cache-ttl" => {
                config.cache_ttl = Some(std::time::Duration::from_secs(
                    value_of("--cache-ttl")?.parse()?,
                ));
            }
            "--cache-bytes" => config.cache_max_bytes = Some(value_of("--cache-bytes")?.parse()?),
            "--cache-snapshot" => {
                config.cache_snapshot = Some(value_of("--cache-snapshot")?.into());
            }
            "--snapshot-interval-ms" => {
                config.snapshot_interval = std::time::Duration::from_millis(
                    value_of("--snapshot-interval-ms")?.parse()?,
                );
            }
            "--log" => config.log_requests = true,
            "--queue-limit" => config.queue_limit = value_of("--queue-limit")?.parse()?,
            "--request-deadline-ms" => {
                config.request_deadline = Some(std::time::Duration::from_millis(
                    value_of("--request-deadline-ms")?.parse()?,
                ));
            }
            "--fault-seed" => {
                config.faults = Some(arrayflex_serve::FaultConfig::with_seed(
                    value_of("--fault-seed")?.parse()?,
                ));
            }
            "--job-dir" => config.job_dir = Some(value_of("--job-dir")?.into()),
            "--tenant-rate" => config.tenant_rate = Some(value_of("--tenant-rate")?.parse()?),
            "--tenant-burst" => config.tenant_burst = value_of("--tenant-burst")?.parse()?,
            "--tenant-max-jobs" => {
                config.tenant_max_jobs = value_of("--tenant-max-jobs")?.parse()?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: serve [--addr HOST:PORT] [--threads N] [--loops N] \
                     [--gather-window-us N] [--legacy-serve] [--cache N] \
                     [--max-body BYTES] [--cache-ttl SECS] [--cache-bytes BYTES] \
                     [--cache-snapshot PATH] [--snapshot-interval-ms N] [--log] \
                     [--queue-limit N] [--request-deadline-ms N] [--fault-seed N] \
                     [--job-dir PATH] [--tenant-rate N] [--tenant-burst N] \
                     [--tenant-max-jobs N]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown flag {other}").into()),
        }
    }
    let mut handle = serve(config)?;
    println!("listening on http://{}", handle.addr());
    println!(
        "routes: GET /healthz | GET /metrics | POST /v1/plan | POST /v1/sweep | \
         POST /v1/simulate | POST /v1/jobs | GET /v1/jobs/{{id}}[/result] | \
         DELETE /v1/jobs/{{id}}"
    );
    handle.wait();
    Ok(())
}
