//! The `serve` binary: run the ArrayFlex planning/simulation service.
//!
//! ```text
//! cargo run --release -p arrayflex-serve --bin serve -- [--addr 127.0.0.1:8080]
//!     [--threads N] [--cache N] [--max-body BYTES]
//! ```
//!
//! `--addr 127.0.0.1:0` binds an ephemeral port; the chosen address is
//! printed on the first line of stdout (`listening on http://...`), which
//! the CI smoke test parses.

use arrayflex_serve::http::{serve, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = ServerConfig {
        // The library default is an ephemeral port (for tests); the
        // binary binds the README's quickstart port unless overridden.
        addr: "127.0.0.1:8080".to_owned(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => config.addr = value_of("--addr")?,
            "--threads" => config.threads = value_of("--threads")?.parse()?,
            "--cache" => config.cache_capacity = value_of("--cache")?.parse()?,
            "--max-body" => config.max_body_bytes = value_of("--max-body")?.parse()?,
            "--help" | "-h" => {
                println!(
                    "usage: serve [--addr HOST:PORT] [--threads N] [--cache N] [--max-body BYTES]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown flag {other}").into()),
        }
    }
    let mut handle = serve(config)?;
    println!("listening on http://{}", handle.addr());
    println!(
        "routes: GET /healthz | GET /metrics | POST /v1/plan | POST /v1/sweep | POST /v1/simulate"
    );
    handle.wait();
    Ok(())
}
