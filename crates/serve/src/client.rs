//! A minimal blocking HTTP/1.1 client for loopback use.
//!
//! Just enough to drive the server from the load generator, the tests and
//! the `serve_client` example: `Content-Length` framing, no TLS, no
//! redirects. [`get`]/[`post_json`] open one connection per request
//! (`connection: close`); [`PersistentClient`] holds a keep-alive
//! connection open across requests and supports pipelining via separate
//! [`PersistentClient::send`] / [`PersistentClient::recv`] calls.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A decoded HTTP response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// The response body.
    pub body: Vec<u8>,
    /// Parsed `Retry-After` header in seconds, when the server sent one
    /// (load shedding and deadline-expired 503s do).
    pub retry_after: Option<u64>,
    /// Whether the server flagged this as a stale-but-coherent degraded
    /// answer (`x-arrayflex-stale: 1`, served under shed pressure).
    pub stale: bool,
}

impl ClientResponse {
    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// Returns an error if the body is not valid UTF-8.
    pub fn text(&self) -> io::Result<&str> {
        std::str::from_utf8(&self.body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Issues `GET path`.
///
/// # Errors
///
/// Propagates connection and protocol errors.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<ClientResponse> {
    request(addr, "GET", path, None)
}

/// Issues `POST path` with a JSON body.
///
/// # Errors
///
/// Propagates connection and protocol errors.
pub fn post_json(addr: SocketAddr, path: &str, body: &str) -> io::Result<ClientResponse> {
    request(addr, "POST", path, Some(body.as_bytes()))
}

fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_nodelay(true)?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: {addr}\r\nconnection: close\r\n");
    if let Some(body) = body {
        head.push_str(&format!(
            "content-type: application/json\r\ncontent-length: {}\r\n",
            body.len()
        ));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    if let Some(body) = body {
        stream.write_all(body)?;
    }
    stream.flush()?;
    read_response(&mut BufReader::new(stream))
}

/// A keep-alive HTTP/1.1 connection.
///
/// Requests omit the `connection` header, so the server keeps the
/// connection open between them. [`PersistentClient::send`] and
/// [`PersistentClient::recv`] are separate so callers can pipeline:
/// write several requests back to back, then read the responses in
/// order.
#[derive(Debug)]
pub struct PersistentClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl PersistentClient {
    /// Connects a new keep-alive client.
    ///
    /// # Errors
    ///
    /// Propagates connection-setup errors.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        writer.set_read_timeout(Some(Duration::from_secs(60)))?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self { writer, reader })
    }

    /// Writes one request without reading its response.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn send(&mut self, method: &str, path: &str, body: Option<&[u8]>) -> io::Result<()> {
        let mut head = format!("{method} {path} HTTP/1.1\r\n");
        if let Some(body) = body {
            head.push_str(&format!(
                "content-type: application/json\r\ncontent-length: {}\r\n",
                body.len()
            ));
        }
        head.push_str("\r\n");
        self.writer.write_all(head.as_bytes())?;
        if let Some(body) = body {
            self.writer.write_all(body)?;
        }
        self.writer.flush()
    }

    /// Reads the next pipelined response off the connection.
    ///
    /// # Errors
    ///
    /// Propagates read and framing errors.
    pub fn recv(&mut self) -> io::Result<ClientResponse> {
        read_response(&mut self.reader)
    }

    /// One request/response round trip over the held connection.
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol errors.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> io::Result<ClientResponse> {
        self.send(method, path, body)?;
        self.recv()
    }
}

/// Reads a complete response (status line, headers, `Content-Length`-framed
/// body, or body-until-close when no length was sent).
///
/// # Errors
///
/// Returns an error on a malformed status line or a truncated body.
pub fn read_response<R: BufRead>(reader: &mut R) -> io::Result<ClientResponse> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed status line {status_line:?}"),
            )
        })?;
    let mut content_length: Option<usize> = None;
    let mut retry_after: Option<u64> = None;
    let mut stale = false;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed inside response head",
            ));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().ok();
            } else if name.eq_ignore_ascii_case("retry-after") {
                retry_after = value.trim().parse::<u64>().ok();
            } else if name.eq_ignore_ascii_case("x-arrayflex-stale") {
                stale = value.trim() == "1";
            }
        }
    }
    let body = match content_length {
        Some(length) => {
            let mut body = vec![0u8; length];
            reader.read_exact(&mut body)?;
            body
        }
        None => {
            let mut body = Vec::new();
            reader.read_to_end(&mut body)?;
            body
        }
    };
    Ok(ClientResponse {
        status,
        body,
        retry_after,
        stale,
    })
}
