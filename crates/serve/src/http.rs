//! A hand-rolled HTTP/1.1 server on [`std::net::TcpListener`].
//!
//! The build environment has no crates.io access, so — mirroring the
//! hand-rolled `ParallelExecutor` — the serving layer implements the small
//! subset of HTTP/1.1 the ArrayFlex API needs: request-line and header
//! parsing, `Content-Length` bodies with a configurable size cap, and
//! `Connection: keep-alive` with pipelining on the default event-loop
//! path (`crate::event_loop`). This module owns the public surface —
//! [`ServerConfig`], [`ServerHandle`], [`serve`] — plus the **legacy**
//! blocking one-response-per-connection server kept behind
//! [`ServerConfig::legacy`] (`--legacy-serve`) as an escape hatch.
//!
//! # Thread model (legacy path)
//!
//! One **acceptor** thread blocks on [`TcpListener::accept`] and feeds
//! accepted connections into an [`mpsc`] channel; a fixed pool of
//! **worker** threads pops connections from the shared channel and serves
//! them end to end. Shutdown (see [`ServerHandle::shutdown`]) sets a flag,
//! pokes the acceptor awake with a loopback connection, and then joins:
//! the channel is dropped by the acceptor, workers first drain every
//! connection that was already accepted, then exit — in-flight requests
//! always receive their response. (The event-loop thread model is
//! described in `crate::event_loop`.)

use crate::api::{self, AppState};
use crate::conn::{HeadFields, MAX_HEAD_BYTES, REJECT_DRAIN_BYTES};
use crate::event_loop;
use crate::poll;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of [`serve`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads serving requests (`0` auto-detects, minimum 1).
    pub threads: usize,
    /// Total capacity of the plan cache.
    pub cache_capacity: usize,
    /// Maximum accepted request-body size in bytes (413 beyond this).
    pub max_body_bytes: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Expire cached plans this long after they were computed (`None`
    /// keeps them until evicted). See `PlanCacheBuilder::ttl`.
    pub cache_ttl: Option<Duration>,
    /// Byte budget of the plan cache (`None` bounds it by entry count
    /// only). See `PlanCacheBuilder::max_bytes`.
    pub cache_max_bytes: Option<usize>,
    /// Warm the plan cache from this snapshot at startup and keep it
    /// current: a saver thread rewrites the file (atomically) whenever the
    /// resident entry set changed, every [`ServerConfig::snapshot_interval`],
    /// and a graceful shutdown writes one final snapshot. A missing file is
    /// a cold start; a corrupt one is reported and ignored.
    pub cache_snapshot: Option<PathBuf>,
    /// How often the saver thread checks for (and persists) cache changes.
    pub snapshot_interval: Duration,
    /// Emit one structured log line per served request on stdout
    /// (`ts=… route=… status=… latency_us=… cache=… key=…`).
    pub log_requests: bool,
    /// Serve over the legacy blocking worker-pool server (one request per
    /// connection, `Connection: close`) instead of the keep-alive event
    /// loop. Escape hatch, exposed as `--legacy-serve`.
    pub legacy: bool,
    /// Event-loop threads on the default (non-legacy) path (`0`
    /// auto-detects, minimum 1). [`ServerConfig::threads`] then sizes the
    /// handler worker pool the loops hand parsed requests to.
    pub event_loops: usize,
    /// Gather window for `/v1/simulate` batch admission: the first
    /// simulate request of a configuration waits up to this long for
    /// same-configuration requests to arrive, then the whole group runs
    /// as one pooled-array batch through `ParallelExecutor`.
    /// `Duration::ZERO` (the default) disables gathering — sequential
    /// callers never pay the window as added latency.
    pub gather_window: Duration,
    /// Bound on the worker job queue (parsed requests dispatched but not
    /// yet picked up). At or beyond this depth new worker-bound requests
    /// are **shed**: answered `503` + `Retry-After` on the loop thread
    /// without running the computation (`/v1/plan` may instead be served
    /// a stale rendered-memo body, flagged via the
    /// `x-arrayflex-stale` header). `0` disables shedding (unbounded
    /// queue). Exposed as `--queue-limit`.
    pub queue_limit: usize,
    /// Per-request deadline measured from dispatch: a request still
    /// waiting in the worker queue past this is answered `503` +
    /// `Retry-After` without running its computation, and a request whose
    /// handler is still running past it is cancelled cooperatively at the
    /// next job-item boundary (a structured `503` reporting partial
    /// progress). `None` disables deadlines. Exposed as
    /// `--request-deadline-ms`.
    pub request_deadline: Option<Duration>,
    /// Directory for the crash-safe `/v1/jobs` store: every completed
    /// sweep point of a running job is checkpointed here (atomic
    /// tmp+rename+sync, like the plan-cache snapshot), and a restart with
    /// the same directory resumes incomplete jobs from their last
    /// checkpoint. `None` keeps jobs in memory only (still cancellable,
    /// not crash-safe). Exposed as `--job-dir`.
    pub job_dir: Option<PathBuf>,
    /// Per-tenant token-bucket admission rate in requests per second,
    /// keyed by the `x-arrayflex-tenant` header (requests without the
    /// header share the `"anonymous"` bucket). Beyond the bucket a request
    /// is answered `429` + `Retry-After` on the loop thread. `None`
    /// disables tenant rate admission. Exposed as `--tenant-rate`.
    pub tenant_rate: Option<f64>,
    /// Burst capacity of each tenant token bucket (maximum tokens a
    /// bucket holds). Only meaningful with
    /// [`ServerConfig::tenant_rate`]. Exposed as `--tenant-burst`.
    pub tenant_burst: f64,
    /// Maximum concurrently active (queued or running) `/v1/jobs` jobs per
    /// tenant; submissions beyond it are answered `429` + `Retry-After`.
    /// `0` disables the cap. Exposed as `--tenant-max-jobs`.
    pub tenant_max_jobs: usize,
    /// Deterministic fault injection (see [`crate::fault`]): when set,
    /// every stream read/write, poll and accept consults the seeded
    /// [`crate::fault::FaultPlan`]. The seed is printed at startup so a
    /// chaotic run is replayable. Exposed as `--fault-seed`.
    pub faults: Option<crate::fault::FaultConfig>,
    /// Test-only escape hatch for the fault harness: when set,
    /// `POST /__test/panic` panics inside the handler, proving
    /// `catch_unwind` isolation answers a structured 500 and the worker
    /// survives. Never enabled by the binaries.
    pub panic_route: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            threads: 4,
            cache_capacity: 128,
            max_body_bytes: 1024 * 1024,
            read_timeout: Duration::from_secs(30),
            cache_ttl: None,
            cache_max_bytes: None,
            cache_snapshot: None,
            snapshot_interval: Duration::from_secs(1),
            log_requests: false,
            legacy: false,
            event_loops: 1,
            gather_window: Duration::ZERO,
            queue_limit: 1024,
            request_deadline: None,
            job_dir: None,
            tenant_rate: None,
            tenant_burst: 8.0,
            tenant_max_jobs: 16,
            faults: None,
            panic_route: false,
        }
    }
}

/// A running server: its bound address, shared state and shutdown control.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
    /// The legacy acceptor thread, when the legacy path is serving.
    acceptor: Option<JoinHandle<()>>,
    /// Legacy workers, or event-loop + handler-worker threads.
    workers: Vec<JoinHandle<()>>,
    /// Event-loop wakers (empty on the legacy path): a shutdown wakes
    /// every loop so it observes the stop flag and begins draining.
    wakers: Vec<poll::Waker>,
    /// Whether shutdown must poke a blocking `accept()` awake with a
    /// throwaway loopback connection (legacy path only).
    legacy_poke: bool,
    saver: Option<JoinHandle<()>>,
    saver_stop: Arc<(Mutex<bool>, Condvar)>,
    snapshot_path: Option<PathBuf>,
}

impl ServerHandle {
    /// The address the server is listening on.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared application state (cache, metrics, counters).
    #[must_use]
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Blocks the calling thread until the server stops accepting (i.e.
    /// until another thread calls [`ServerHandle::shutdown`] or the
    /// acceptor dies). Used by the `serve` binary's main thread.
    pub fn wait(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(saver) = self.saver.take() {
            let (stopped, wake) = &*self.saver_stop;
            *stopped.lock().unwrap_or_else(|e| e.into_inner()) = true;
            wake.notify_all();
            let _ = saver.join();
        }
        // Stop the job runners: fire their tokens (reason: shutdown) and
        // join. Interrupted jobs keep `running` status in their
        // checkpoints, so the next start with the same --job-dir resumes
        // them — a graceful stop and a SIGKILL converge on the same
        // recovery path.
        self.state.jobs().shutdown();
        // One final snapshot after the workers have drained, so plans
        // cached by the very last requests survive the restart too.
        if let Some(path) = &self.snapshot_path {
            if let Err(e) = self.state.cache().snapshot_to(path) {
                eprintln!("plan-cache snapshot to {} failed: {e}", path.display());
            }
        }
    }

    /// Gracefully shuts the server down: stops accepting new connections,
    /// serves everything already accepted (and every request already in
    /// flight on a kept-alive connection) to completion, flushes write
    /// queues, then joins all threads.
    pub fn shutdown(mut self) {
        self.signal_stop();
        self.wait();
    }

    /// Sets the stop flag and wakes whichever serving path is blocked.
    fn signal_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if self.legacy_poke {
            // Poke the acceptor out of its blocking accept() with a
            // throwaway loopback connection; it observes the flag and
            // exits.
            let _ = TcpStream::connect(self.addr);
        }
        for waker in &self.wakers {
            waker.wake();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // A dropped (not shut down, not waited) handle still stops the
        // server so tests cannot leak serving threads.
        if self.acceptor.is_some() || !self.workers.is_empty() {
            self.signal_stop();
            self.wait();
        }
    }
}

/// Binds the configured address and starts the serving threads — the
/// keep-alive event loop by default, the legacy blocking worker pool when
/// [`ServerConfig::legacy`] is set. Returns immediately with a
/// [`ServerHandle`].
///
/// # Errors
///
/// Returns an error if the address cannot be bound (or, on the event
/// path, the readiness poller cannot be created).
pub fn serve(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    // `shared` (not `new`): the `/v1/jobs` runner threads need the `Arc`,
    // and incomplete jobs checkpointed in `job_dir` resume right here.
    let state = AppState::shared(&config);
    warm_start(&state, &config);
    let stop = Arc::new(AtomicBool::new(false));

    let (acceptor, workers, wakers) = if config.legacy {
        let (acceptor, workers) = spawn_legacy(listener, &state, &stop, &config);
        (Some(acceptor), workers, Vec::new())
    } else {
        let parts = event_loop::start(listener, Arc::clone(&state), Arc::clone(&stop), &config)?;
        (None, parts.threads, parts.wakers)
    };

    let (saver, saver_stop) = spawn_saver(&state, &config);
    Ok(ServerHandle {
        addr,
        state,
        stop,
        acceptor,
        workers,
        wakers,
        legacy_poke: config.legacy,
        saver,
        saver_stop,
        snapshot_path: config.cache_snapshot,
    })
}

/// Resolves a `0` thread count to the detected hardware parallelism.
pub(crate) fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    }
}

/// Warm-starts the plan cache from the configured snapshot, if any.
fn warm_start(state: &Arc<AppState>, config: &ServerConfig) {
    if let Some(path) = &config.cache_snapshot {
        match state.cache().load_snapshot(path) {
            Ok(n) => eprintln!(
                "plan cache warm-started with {n} plans from {}",
                path.display()
            ),
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                // First run: nothing to warm from, the saver will create it.
            }
            Err(e) => {
                // All-or-nothing: `load_snapshot` validated the whole file
                // before inserting anything, so a corrupt snapshot is a
                // clean cold start — counted so operators can alert on it.
                state.metrics().note_snapshot_rejected();
                eprintln!(
                    "ignoring unusable plan-cache snapshot {}: {e}",
                    path.display()
                );
            }
        }
    }
}

/// Spawns the legacy acceptor + blocking worker pool.
fn spawn_legacy(
    listener: TcpListener,
    state: &Arc<AppState>,
    stop: &Arc<AtomicBool>,
    config: &ServerConfig,
) -> (JoinHandle<()>, Vec<JoinHandle<()>>) {
    let threads = resolve_threads(config.threads);
    let (sender, receiver): (Sender<TcpStream>, Receiver<TcpStream>) = mpsc::channel();
    let receiver = Arc::new(Mutex::new(receiver));

    let mut workers = Vec::with_capacity(threads);
    for index in 0..threads {
        let receiver = Arc::clone(&receiver);
        let state = Arc::clone(state);
        let read_timeout = config.read_timeout;
        workers.push(
            std::thread::Builder::new()
                .name(format!("serve-worker-{index}"))
                .spawn(move || loop {
                    // Hold the receiver lock only for the pop; queued
                    // connections drain even after the sender is gone.
                    // Poison-tolerant, and the connection is served under
                    // `catch_unwind`: a panicking handler costs one
                    // connection, not a worker thread.
                    let next = receiver
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .recv();
                    match next {
                        Ok(stream) => {
                            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                serve_connection(stream, &state, read_timeout);
                            }))
                            .is_err()
                            {
                                state.metrics().note_panic();
                            }
                        }
                        Err(_) => break,
                    }
                })
                .expect("spawn worker thread"),
        );
    }

    let acceptor = {
        let stop = Arc::clone(stop);
        let state = Arc::clone(state);
        std::thread::Builder::new()
            .name("serve-acceptor".to_owned())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break; // the poke connection is dropped unserved
                    }
                    let Ok(stream) = stream else { continue };
                    state.note_accepted();
                    if sender.send(stream).is_err() {
                        break;
                    }
                }
                // Dropping the sender lets workers finish the queue and exit.
            })
            .expect("spawn acceptor thread")
    };
    (acceptor, workers)
}

/// Spawns the snapshot saver, when a snapshot path is configured: it
/// polls the cache generation every `snapshot_interval` and rewrites the
/// snapshot (atomically) when the resident entry set changed. Periodic
/// writes — not just the one at graceful shutdown — mean even a server
/// killed with SIGKILL warm-starts from its last persisted state.
#[allow(clippy::type_complexity)]
fn spawn_saver(
    state: &Arc<AppState>,
    config: &ServerConfig,
) -> (Option<JoinHandle<()>>, Arc<(Mutex<bool>, Condvar)>) {
    let saver_stop = Arc::new((Mutex::new(false), Condvar::new()));
    let saver = config.cache_snapshot.as_ref().map(|path| {
        let path = path.clone();
        let state = Arc::clone(state);
        let signal = Arc::clone(&saver_stop);
        let interval = config.snapshot_interval;
        std::thread::Builder::new()
            .name("serve-snapshot-saver".to_owned())
            .spawn(move || {
                let (stopped, wake) = &*signal;
                let mut last_generation = state.cache().generation();
                let mut guard = stopped.lock().unwrap_or_else(|e| e.into_inner());
                while !*guard {
                    let (next, _) = wake
                        .wait_timeout(guard, interval)
                        .unwrap_or_else(|e| e.into_inner());
                    guard = next;
                    if *guard {
                        break; // the final write happens in wait()
                    }
                    let generation = state.cache().generation();
                    if generation != last_generation {
                        match state.cache().snapshot_to(&path) {
                            Ok(_) => last_generation = generation,
                            Err(e) => eprintln!(
                                "plan-cache snapshot to {} failed: {e}",
                                path.display()
                            ),
                        }
                    }
                }
            })
            .expect("spawn snapshot saver thread")
    });
    (saver, saver_stop)
}

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, ...), upper-case as received.
    pub method: String,
    /// Request path (query strings are not used by this API).
    pub path: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// One HTTP response about to be written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// The response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A `200 OK` JSON response.
    #[must_use]
    pub fn json(body: impl Into<Vec<u8>>) -> Self {
        Self {
            status: 200,
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// A `200 OK` plain-text response (used by `/metrics`).
    #[must_use]
    pub fn text(body: impl Into<Vec<u8>>) -> Self {
        Self {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body: body.into(),
        }
    }

    /// A structured JSON error response: `{"error":{"code":...,"message":...}}`.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Self {
        let body = serde_json::to_string(&serde::Value::Object(vec![(
            "error".to_owned(),
            serde::Value::Object(vec![
                ("code".to_owned(), serde::Value::Int(i64::from(status))),
                ("message".to_owned(), serde::Value::Str(message.to_owned())),
            ]),
        )]))
        .expect("error body serializes");
        Self {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }
}

/// The canonical reason phrase of each status code this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Extra head lines carried by shed and deadline-expired 503s: the
/// client should retry, with backoff, after this many seconds.
pub(crate) const RETRY_AFTER_HEADER: &str = "retry-after: 1\r\n";

/// Extra head line flagging a `/v1/plan` 200 served from the rendered
/// memo *past* its coherence window under shed pressure. The body is
/// still byte-identical to a fresh computation (planning is pure), but
/// the client is told it skipped the queue.
pub(crate) const STALE_HEADER: &str = "x-arrayflex-stale: 1\r\n";

/// Renders one response head. The `connection` header is always explicit
/// so clients never have to apply HTTP-version defaulting rules. `extra`
/// is zero or more complete `name: value\r\n` lines (e.g.
/// [`RETRY_AFTER_HEADER`]) spliced in before the terminating CRLF.
pub(crate) fn render_head(
    status: u16,
    content_type: &str,
    content_length: usize,
    keep_alive: bool,
    extra: &str,
) -> String {
    format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n{}\r\n",
        status,
        reason(status),
        content_type,
        content_length,
        if keep_alive { "keep-alive" } else { "close" },
        extra,
    )
}

/// Outcome of reading one request off a connection.
enum ReadOutcome {
    Request(HttpRequest),
    /// The request could not be parsed; respond with this and close.
    Reject(HttpResponse),
    /// The peer vanished before sending a complete head; just close.
    Disconnected,
}

fn serve_connection(stream: TcpStream, state: &AppState, read_timeout: Duration) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let started = Instant::now();
    let (route, response, trace) = match read_request(&mut reader, state.max_body_bytes()) {
        ReadOutcome::Request(request) => {
            let route = api::route_label(&request.path);
            let (response, trace) = api::handle_traced(state, &request);
            (route, response, trace)
        }
        ReadOutcome::Reject(response) => {
            // The rejected request's unread remainder (head tail or body)
            // would make the close RST the error response off the wire —
            // same rationale as the 413 body drain, but the remaining
            // length is unknown here, so drain whatever arrives within a
            // short grace window.
            let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
            let _ = io::copy(&mut reader.by_ref().take(REJECT_DRAIN_BYTES), &mut io::sink());
            ("unparsable", response, api::RequestTrace::default())
        }
        ReadOutcome::Disconnected => return,
    };
    let latency = started.elapsed();
    state.metrics().observe(route, response.status, latency);
    if state.log_requests() {
        println!("{}", log_line(route, response.status, latency, trace));
    }
    write_response(stream, &response);
}

/// Formats one structured request log line:
/// `ts=<unix-millis> route=… status=… latency_us=… cache=hit|miss|- key=<hex>|-`.
pub(crate) fn log_line(
    route: &str,
    status: u16,
    latency: Duration,
    trace: api::RequestTrace,
) -> String {
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |since| since.as_millis());
    let (cache, key) = match trace.cache {
        Some((outcome, hash)) => (outcome.to_string(), format!("{hash:016x}")),
        None => ("-".to_owned(), "-".to_owned()),
    };
    format!(
        "ts={ts} route={route} status={status} latency_us={} cache={cache} key={key}",
        latency.as_micros()
    )
}

fn read_request(reader: &mut BufReader<TcpStream>, max_body: usize) -> ReadOutcome {
    // --- request line ---
    let line = match read_head_line(reader) {
        HeadLine::Line(line) => line,
        HeadLine::Closed => return ReadOutcome::Disconnected,
        HeadLine::Reject(response) => return ReadOutcome::Reject(response),
    };
    // The request line and every header run through the same validators
    // as the event-loop parser (`crate::conn`), so the framing rules —
    // Content-Length hygiene, the Transfer-Encoding 501 — cannot drift
    // between the two paths.
    let (method, path, _http10) = match crate::conn::parse_request_line(&line) {
        Ok(parsed) => parsed,
        Err(response) => return ReadOutcome::Reject(response),
    };

    // --- headers ---
    let mut fields = HeadFields::default();
    let mut head_bytes = line.len();
    loop {
        let header = match read_head_line(reader) {
            HeadLine::Line(header) => header,
            HeadLine::Closed => return ReadOutcome::Disconnected,
            HeadLine::Reject(response) => return ReadOutcome::Reject(response),
        };
        if header.is_empty() {
            break;
        }
        head_bytes += header.len();
        if head_bytes > MAX_HEAD_BYTES {
            return ReadOutcome::Reject(HttpResponse::error(431, "request head too large"));
        }
        if let Err(response) = fields.header_line(&header) {
            return ReadOutcome::Reject(response);
        }
    }

    // --- body ---
    let length = fields.content_length.unwrap_or(0);
    if length > max_body {
        // Best-effort bounded drain of the announced body so the client
        // can finish sending and receive the 413 instead of a reset.
        let _ = io::copy(
            &mut reader.by_ref().take((length as u64).min(REJECT_DRAIN_BYTES)),
            &mut io::sink(),
        );
        return ReadOutcome::Reject(HttpResponse::error(
            413,
            &format!("request body of {length} bytes exceeds the {max_body}-byte limit"),
        ));
    }
    let mut body = vec![0u8; length];
    if reader.read_exact(&mut body).is_err() {
        return ReadOutcome::Disconnected;
    }
    ReadOutcome::Request(HttpRequest { method, path, body })
}

/// Outcome of reading one head line off the connection.
enum HeadLine {
    /// A complete UTF-8 head line, line terminators stripped.
    Line(String),
    /// The peer closed (or errored) before a terminated line arrived.
    Closed,
    /// The line violates a head invariant; respond with this and close.
    /// (Previously these fell through as a silent TCP close, so clients
    /// could not distinguish an overlong or binary head from a crash and
    /// the request never reached the metrics.)
    Reject(HttpResponse),
}

/// Reads one CRLF- (or bare-LF-) terminated head line, capped at
/// [`MAX_HEAD_BYTES`].
fn read_head_line(reader: &mut BufReader<TcpStream>) -> HeadLine {
    let mut line = Vec::new();
    let mut limited = reader.take(MAX_HEAD_BYTES as u64 + 1);
    match limited.read_until(b'\n', &mut line) {
        Err(_) | Ok(0) => return HeadLine::Closed,
        Ok(_) => {}
    }
    if line.len() > MAX_HEAD_BYTES {
        return HeadLine::Reject(HttpResponse::error(431, "request head line too long"));
    }
    if line.last() != Some(&b'\n') {
        // EOF mid-line: the peer hung up before terminating the line.
        return HeadLine::Closed;
    }
    while matches!(line.last(), Some(b'\n' | b'\r')) {
        line.pop();
    }
    match String::from_utf8(line) {
        Ok(text) => HeadLine::Line(text),
        Err(_) => HeadLine::Reject(HttpResponse::error(400, "request head is not valid UTF-8")),
    }
}

fn write_response(mut stream: TcpStream, response: &HttpResponse) {
    // The legacy path never keeps connections alive.
    let head = render_head(response.status, response.content_type, response.body.len(), false, "");
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(&response.body))
        .and_then(|()| stream.flush());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_bodies_are_structured_json() {
        let response = HttpResponse::error(413, "too big");
        assert_eq!(response.status, 413);
        let value: serde::Value =
            serde_json::from_str(std::str::from_utf8(&response.body).unwrap()).unwrap();
        let error = value.get("error").expect("error object");
        assert_eq!(error.get("code"), Some(&serde::Value::Int(413)));
        assert_eq!(error.get("message"), Some(&serde::Value::Str("too big".into())));
    }

    #[test]
    fn reason_phrases_cover_every_emitted_status() {
        for status in [200u16, 202, 400, 404, 405, 409, 413, 429, 431, 500, 501, 503] {
            assert_ne!(reason(status), "Unknown", "status {status}");
        }
        assert_eq!(reason(599), "Unknown");
    }

    #[test]
    fn response_heads_are_explicit_about_connection_reuse() {
        let head = render_head(200, "application/json", 42, true, "");
        assert!(head.starts_with("HTTP/1.1 200 OK\r\n"), "{head}");
        assert!(head.contains("content-length: 42\r\n"), "{head}");
        assert!(head.contains("connection: keep-alive\r\n"), "{head}");
        assert!(head.ends_with("\r\n\r\n"), "{head}");
        let head = render_head(501, "application/json", 0, false, "");
        assert!(head.starts_with("HTTP/1.1 501 Not Implemented\r\n"), "{head}");
        assert!(head.contains("connection: close\r\n"), "{head}");
    }

    #[test]
    fn extra_head_lines_splice_in_before_the_terminator() {
        let head = render_head(503, "application/json", 7, true, RETRY_AFTER_HEADER);
        assert!(head.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{head}");
        assert!(head.contains("\r\nretry-after: 1\r\n"), "{head}");
        assert!(head.ends_with("retry-after: 1\r\n\r\n"), "{head}");
        let head = render_head(200, "application/json", 7, true, STALE_HEADER);
        assert!(head.contains("\r\nx-arrayflex-stale: 1\r\n"), "{head}");
        assert!(head.ends_with("\r\n\r\n"), "{head}");
    }
}
