//! Deterministic fault injection for the serving stack.
//!
//! A [`FaultPlan`] is a seeded schedule of syscall-level faults — EINTR,
//! spurious wakeups, short reads/writes, `WouldBlock`, mid-body resets,
//! and `accept(2)` failures — consulted by the event loop at every I/O
//! boundary: the stream shim ([`crate::conn::FaultyStream`]) wraps each
//! connection's reads and writes, a `FaultyPoller` wraps the loop's
//! [`Poller`], and the accept path asks the plan before touching the
//! listener. Every decision is drawn from one `SplitMix64`
//! stream, so a fault schedule is replayable from its printed seed: the
//! same seed produces the same sequence of injected faults (the exact
//! interleaving across threads still varies, which is the point — the
//! chaos invariant must hold for *any* schedule the seed produces).
//!
//! The chaos invariant the harness checks (see `tests/chaos.rs` and
//! `scripts/chaos_smoke.sh`): under any seeded fault schedule the server
//! never panics, never deadlocks, and every request answered 200 carries
//! the byte-identical body it would have gotten with no faults.

use crate::poll::{Event, Interest, Poller};
use gemm::rng::SplitMix64;
use std::io;
use std::os::fd::RawFd;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Per-mille (0..=1000) fault rates plus the seed that makes the
/// schedule deterministic. The default rates are tuned so connections
/// still complete routinely: faults exercise the retry branches without
/// drowning the happy path.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed for the fault schedule; print it to make a run replayable.
    pub seed: u64,
    /// Per-mille chance a stream read returns `EINTR`.
    pub read_eintr: u32,
    /// Per-mille chance a stream read returns `WouldBlock`.
    pub read_wouldblock: u32,
    /// Per-mille chance a stream read is truncated to a few bytes.
    pub read_short: u32,
    /// Per-mille chance a stream read returns `ECONNRESET`.
    pub read_reset: u32,
    /// Per-mille chance a stream write returns `EINTR`.
    pub write_eintr: u32,
    /// Per-mille chance a stream write returns `WouldBlock`.
    pub write_wouldblock: u32,
    /// Per-mille chance a stream write is truncated to a few bytes.
    pub write_short: u32,
    /// Per-mille chance a stream write returns `ECONNRESET` (a mid-body
    /// reset when it lands inside a response).
    pub write_reset: u32,
    /// Per-mille chance a poll returns early with no events (the shape
    /// EINTR takes after `poll.rs` swallows it).
    pub poll_eintr: u32,
    /// Per-mille chance a poll reports one extra, spurious readiness
    /// event for an arbitrary token.
    pub spurious_wakeup: u32,
    /// How many `accept(2)` calls fail with `EMFILE` before the listener
    /// behaves again (a burst, not a rate: deterministic regardless of
    /// accept timing).
    pub accept_fail_burst: u32,
}

impl FaultConfig {
    /// The default chaos-mode rates under a caller-chosen seed.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            read_eintr: 20,
            read_wouldblock: 20,
            read_short: 60,
            read_reset: 4,
            write_eintr: 20,
            write_wouldblock: 20,
            write_short: 60,
            write_reset: 4,
            poll_eintr: 10,
            spurious_wakeup: 10,
            accept_fail_burst: 0,
        }
    }
}

/// What the fault plan decided for one read or write call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum IoFault {
    /// Perform the real operation.
    None,
    /// Return `io::ErrorKind::Interrupted`.
    Eintr,
    /// Return `io::ErrorKind::WouldBlock`.
    WouldBlock,
    /// Return `io::ErrorKind::ConnectionReset`.
    Reset,
    /// Truncate the operation to this many bytes, then do it for real.
    Short(usize),
}

/// What the fault plan decided for one poll call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PollFault {
    /// Poll normally.
    None,
    /// Return immediately with no events (EINTR's observable shape).
    Eintr,
    /// Poll normally, then append one spurious readiness event for the
    /// given token.
    Spurious(usize),
}

/// A seeded, deterministic schedule of injected faults. Shared across
/// every event loop and shim of one server via `Arc`.
#[derive(Debug)]
pub struct FaultPlan {
    config: FaultConfig,
    rng: Mutex<SplitMix64>,
    injected: AtomicU64,
    accepts_failed: AtomicU64,
}

impl FaultPlan {
    /// Builds the plan; the schedule is a pure function of
    /// `config.seed` and the sequence of decision calls.
    pub fn new(config: FaultConfig) -> Self {
        let rng = Mutex::new(SplitMix64::new(config.seed));
        Self {
            config,
            rng,
            injected: AtomicU64::new(0),
            accepts_failed: AtomicU64::new(0),
        }
    }

    /// The seed the schedule replays from.
    pub fn seed(&self) -> u64 {
        self.config.seed
    }

    /// Total faults injected so far (tests assert the schedule actually
    /// fired).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// One deterministic draw in `0..1000`.
    fn draw(&self) -> u64 {
        // A panic while holding this lock is impossible (next_u64 does
        // not panic), but recover rather than poison-propagate anyway.
        let mut rng = self.rng.lock().unwrap_or_else(|e| e.into_inner());
        rng.next_u64() % 1000
    }

    fn note(&self) {
        self.injected.fetch_add(1, Ordering::Relaxed);
    }

    fn io_fault(
        &self,
        len: usize,
        eintr: u32,
        wouldblock: u32,
        short: u32,
        reset: u32,
    ) -> IoFault {
        let roll = self.draw();
        let eintr = u64::from(eintr);
        let wouldblock = u64::from(wouldblock);
        let short = u64::from(short);
        let reset = u64::from(reset);
        if roll < eintr {
            self.note();
            IoFault::Eintr
        } else if roll < eintr + wouldblock {
            self.note();
            IoFault::WouldBlock
        } else if roll < eintr + wouldblock + reset {
            self.note();
            IoFault::Reset
        } else if roll < eintr + wouldblock + reset + short && len > 1 {
            self.note();
            // Truncate to 1..len bytes, biased small so head/body
            // boundaries get split often.
            IoFault::Short(1 + (self.draw() as usize) % (len.min(64) - 1).max(1))
        } else {
            IoFault::None
        }
    }

    /// Decides the fate of one stream read of `len` bytes.
    pub(crate) fn on_read(&self, len: usize) -> IoFault {
        let c = &self.config;
        self.io_fault(len, c.read_eintr, c.read_wouldblock, c.read_short, c.read_reset)
    }

    /// Decides the fate of one stream write of `len` bytes.
    pub(crate) fn on_write(&self, len: usize) -> IoFault {
        let c = &self.config;
        self.io_fault(
            len,
            c.write_eintr,
            c.write_wouldblock,
            c.write_short,
            c.write_reset,
        )
    }

    /// Decides the fate of one poll call.
    pub(crate) fn on_poll(&self) -> PollFault {
        let c = &self.config;
        let roll = self.draw();
        let eintr = u64::from(c.poll_eintr);
        let spurious = u64::from(c.spurious_wakeup);
        if roll < eintr {
            self.note();
            PollFault::Eintr
        } else if roll < eintr + spurious {
            self.note();
            // Any token is fair game: the loop must shrug off readiness
            // for the listener, the waker, live slots and dead slots.
            PollFault::Spurious(self.draw() as usize % 40)
        } else {
            PollFault::None
        }
    }

    /// Returns the error the next `accept(2)` should fail with, if the
    /// configured burst has not been exhausted yet.
    pub(crate) fn on_accept(&self) -> Option<io::Error> {
        let burst = u64::from(self.config.accept_fail_burst);
        if burst == 0 {
            return None;
        }
        let failed = self
            .accepts_failed
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < burst).then_some(n + 1)
            });
        match failed {
            Ok(_) => {
                self.note();
                // EMFILE has no stable ErrorKind; raw os error 24 is what
                // a real fd exhaustion produces on Linux.
                Some(io::Error::from_raw_os_error(24))
            }
            Err(_) => None,
        }
    }
}

/// A [`Poller`] that injects EINTR-shaped empty polls and spurious
/// readiness events around an inner poller.
pub(crate) struct FaultyPoller {
    inner: Box<dyn Poller>,
    plan: std::sync::Arc<FaultPlan>,
}

impl FaultyPoller {
    pub(crate) fn new(inner: Box<dyn Poller>, plan: std::sync::Arc<FaultPlan>) -> Self {
        Self { inner, plan }
    }
}

impl Poller for FaultyPoller {
    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.inner.register(fd, token, interest)
    }

    fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.inner.reregister(fd, token, interest)
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.inner.deregister(fd)
    }

    fn poll(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        match self.plan.on_poll() {
            PollFault::Eintr => {
                // poll.rs maps a real EINTR to Ok-with-no-events; produce
                // exactly that shape without sleeping the timeout.
                events.clear();
                Ok(())
            }
            PollFault::Spurious(token) => {
                self.inner.poll(events, timeout)?;
                events.push(Event {
                    token,
                    readable: true,
                    writable: true,
                });
                Ok(())
            }
            PollFault::None => self.inner.poll(events, timeout),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The same seed must produce the same decision sequence — the
    /// schedule is replayable.
    #[test]
    fn fault_schedule_is_deterministic_per_seed() {
        let a = FaultPlan::new(FaultConfig::with_seed(7));
        let b = FaultPlan::new(FaultConfig::with_seed(7));
        for _ in 0..512 {
            assert_eq!(a.on_read(4096), b.on_read(4096));
            assert_eq!(a.on_write(4096), b.on_write(4096));
            assert_eq!(a.on_poll(), b.on_poll());
        }
        assert_eq!(a.injected(), b.injected());
        assert!(a.injected() > 0, "default rates must actually fire");
    }

    /// Different seeds must diverge (otherwise the seed is not doing
    /// anything).
    #[test]
    fn fault_schedules_diverge_across_seeds() {
        let a = FaultPlan::new(FaultConfig::with_seed(1));
        let b = FaultPlan::new(FaultConfig::with_seed(2));
        let divergent = (0..512).any(|_| a.on_read(4096) != b.on_read(4096));
        assert!(divergent);
    }

    /// The accept burst injects exactly `accept_fail_burst` EMFILEs and
    /// then stops, regardless of how often accept is retried.
    #[test]
    fn accept_burst_is_bounded() {
        let mut config = FaultConfig::with_seed(3);
        config.accept_fail_burst = 3;
        let plan = FaultPlan::new(config);
        let failures = (0..64).filter(|_| plan.on_accept().is_some()).count();
        assert_eq!(failures, 3);
        let err = FaultPlan::new(FaultConfig {
            accept_fail_burst: 1,
            ..FaultConfig::with_seed(4)
        })
        .on_accept()
        .expect("first accept fails");
        assert_eq!(err.raw_os_error(), Some(24));
    }

    /// Short faults never truncate to zero (that would fabricate EOF).
    #[test]
    fn short_faults_keep_at_least_one_byte() {
        let mut config = FaultConfig::with_seed(5);
        config.read_short = 1000;
        config.read_eintr = 0;
        config.read_wouldblock = 0;
        config.read_reset = 0;
        let plan = FaultPlan::new(config);
        for len in [2usize, 3, 16, 4096] {
            match plan.on_read(len) {
                IoFault::Short(n) => assert!(n >= 1 && n < len, "short {n} of {len}"),
                other => panic!("expected Short, got {other:?}"),
            }
        }
        // A 1-byte read cannot be shortened; it must pass through.
        assert_eq!(plan.on_read(1), IoFault::None);
    }
}
