//! The keep-alive event-loop serving path.
//!
//! `N` event-loop threads each own a [`crate::poll::Poller`] and a set of
//! non-blocking connections; loop 0 additionally owns the listener.
//! Loops do no application work: they read bytes, run the incremental
//! parser ([`crate::conn::RequestParser`]), and hand complete requests to
//! a shared handler worker pool as [`Job`]s. Workers route jobs through
//! [`crate::admission`] (singleflight + gather-window batching) and mail
//! finished [`Completion`]s back to the owning loop's [`Mailbox`], which
//! wakes the loop through its [`crate::poll::Waker`].
//!
//! Per-connection invariants:
//!
//! * **Pipelining**: requests are parsed ahead (up to [`MAX_PIPELINED`]
//!   in flight) but responses are written strictly in arrival order; a
//!   `BTreeMap` keyed by sequence number reorders out-of-order
//!   completions.
//! * **Backpressure**: a connection whose write queue crosses
//!   [`crate::conn::WRITE_HIGH_WATERMARK`] (slow reader) or whose
//!   pipeline is full stops being read until it drains below
//!   [`crate::conn::WRITE_LOW_WATERMARK`] — memory per connection stays
//!   bounded no matter how the peer behaves.
//! * **Deadlines**: a hashed timer wheel ([`crate::conn::TimerWheel`])
//!   closes connections idle past `ServerConfig::read_timeout`. Progress
//!   in either direction (bytes read or bytes flushed) resets the
//!   deadline, so slowloris senders and stalled readers are both evicted
//!   while active connections are untouched. Connections with requests
//!   in flight are never idle-closed.
//! * **Graceful shutdown**: a stopping loop closes the listener, lets
//!   mid-request connections finish their request, flushes every write
//!   queue, and exits once the last connection drains.

use crate::admission::{self, Admission, Completion, Job, SharedResponse};
use crate::api::{self, AppState};
use crate::conn::{
    FaultyStream, FlushProgress, Parsed, ParsedRequest, RecvBuffer, RequestParser, TimerWheel,
    WriteQueue, TIMER_TICK_MS,
};
use crate::fault::{FaultPlan, FaultyPoller};
use crate::http::{
    log_line, render_head, resolve_threads, HttpResponse, ServerConfig, RETRY_AFTER_HEADER,
    STALE_HEADER,
};
use crate::poll::{self, Event, Interest, Poller};
use gemm::CancelToken;
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Maximum requests a single connection may have in flight (parsed but
/// not yet responded); parsing pauses beyond this.
pub(crate) const MAX_PIPELINED: usize = 64;

/// Per-`service` read budget: how many bytes one connection may pull off
/// the socket before the loop moves on (fairness under pipelining floods).
const READ_BUDGET: usize = 256 * 1024;

/// Poller token of the listener (loop 0 only).
const LISTENER: usize = 0;
/// Poller token of the mailbox waker.
const WAKE: usize = 1;
/// First token available to connections; token = slot index + this.
const CONN_BASE: usize = 2;

/// How long the accept loop pauses after a persistent accept error
/// (EMFILE-class fd exhaustion). Level-triggered readiness would refire
/// the listener every poll otherwise — a hot spin that starves live
/// connections exactly when the process is already resource-starved.
const ACCEPT_BACKOFF_MS: u64 = 100;

/// Messages other threads push at an event loop.
#[derive(Debug)]
pub(crate) enum LoopMsg {
    /// A freshly accepted connection to adopt.
    Conn(TcpStream),
    /// A finished response for one of this loop's connections.
    Complete(Completion),
}

/// A loop's inbound queue plus the waker that gets its attention.
#[derive(Debug)]
pub(crate) struct Mailbox {
    queue: Mutex<VecDeque<LoopMsg>>,
    waker: poll::Waker,
}

impl Mailbox {
    fn new(waker: poll::Waker) -> Self {
        Self {
            queue: Mutex::new(VecDeque::new()),
            waker,
        }
    }

    /// Enqueues a message, waking the loop only on the empty→non-empty
    /// transition (the loop drains the whole queue per wake).
    ///
    /// Poison-tolerant: a panic caught elsewhere (handlers run under
    /// `catch_unwind`) must never wedge completion delivery — a wedged
    /// mailbox is a deadlocked connection.
    pub(crate) fn push(&self, msg: LoopMsg) {
        let was_empty = {
            let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
            let was_empty = queue.is_empty();
            queue.push_back(msg);
            was_empty
        };
        if was_empty {
            self.waker.wake();
        }
    }

    fn drain(&self) -> VecDeque<LoopMsg> {
        std::mem::take(&mut *self.queue.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

/// Handles `serve()` needs to own: loop + worker threads and the wakers
/// that interrupt a blocked `poll` on shutdown.
pub(crate) struct EventParts {
    pub threads: Vec<JoinHandle<()>>,
    pub wakers: Vec<poll::Waker>,
}

/// One response queued for in-order delivery on a connection.
#[derive(Debug)]
struct Delivery {
    response: SharedResponse,
    close_after: bool,
}

/// State of one live connection.
struct Conn {
    stream: TcpStream,
    buffer: RecvBuffer,
    parser: RequestParser,
    writes: WriteQueue,
    /// Finished responses waiting for their turn (keyed by sequence).
    pending: BTreeMap<u64, Delivery>,
    /// Sequence number the next parsed request receives.
    next_seq: u64,
    /// Sequence number of the next response to write.
    next_to_send: u64,
    /// Requests handed to the worker pool and not yet completed.
    in_flight: usize,
    /// No further requests will be parsed; close once everything drains.
    close_pending: bool,
    /// The peer half-closed (or the socket errored); finish writing what
    /// is owed, then close.
    peer_closed: bool,
    /// Reading is paused for backpressure (write queue over the high
    /// watermark or pipeline full).
    paused: bool,
    /// Interest currently registered with the poller.
    interest: Interest,
    /// Milliseconds-since-epoch of the last byte moved in either
    /// direction; the idle deadline measures from here.
    last_progress_ms: u64,
    /// Cancellation tokens of the connection's in-flight requests, keyed
    /// by sequence. Fired (and the admission layer notified) if the
    /// connection closes before the response lands, so abandoned compute
    /// stops at its next job-item boundary.
    cancels: BTreeMap<u64, CancelToken>,
}

/// A connection slot; the generation guards stale completions after the
/// slot is reused.
struct Slot {
    generation: u64,
    conn: Option<Conn>,
}

/// Everything one event-loop thread owns.
struct EventLoop {
    id: usize,
    poller: Box<dyn Poller>,
    wake_rx: poll::WakeReceiver,
    mailboxes: Vec<Arc<Mailbox>>,
    mailbox: Arc<Mailbox>,
    listener: Option<TcpListener>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    live: usize,
    /// Round-robin cursor for distributing accepted connections.
    rr: usize,
    job_tx: Sender<Job>,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
    stopping: bool,
    wheel: TimerWheel,
    idle_ms: u64,
    epoch: Instant,
    /// Parsed requests sitting in the worker queue, shared with the
    /// workers (which decrement on pickup); the shed decision reads it.
    queue_depth: Arc<AtomicUsize>,
    /// `ServerConfig::queue_limit`; `0` disables shedding.
    queue_limit: usize,
    /// The admission layer, shared with the workers; the loop notifies it
    /// when a connection with in-flight requests closes.
    admission: Arc<Admission>,
    /// Active fault-injection plan (`ServerConfig::faults`).
    faults: Option<Arc<FaultPlan>>,
    /// While `Some`, accepting is paused (listener deregistered) until
    /// this `now_ms` deadline after a persistent accept error.
    accept_resume_at: Option<u64>,
}

/// Spawns the event loops and the handler worker pool.
pub(crate) fn start(
    listener: TcpListener,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
    config: &ServerConfig,
) -> io::Result<EventParts> {
    listener.set_nonblocking(true)?;
    let nloops = resolve_threads(config.event_loops);
    let nworkers = resolve_threads(config.threads);
    let admission = Arc::new(Admission::new(config.gather_window));
    let queue_depth = Arc::new(AtomicUsize::new(0));
    let faults = config.faults.clone().map(|fc| {
        let plan = Arc::new(FaultPlan::new(fc));
        // Replayability contract: every chaotic run prints the seed that
        // reproduces its exact fault schedule.
        eprintln!("serve: fault injection active, seed {}", plan.seed());
        plan
    });

    let mut pollers = Vec::with_capacity(nloops);
    let mut mailboxes = Vec::with_capacity(nloops);
    let mut wakers = Vec::with_capacity(nloops);
    for _ in 0..nloops {
        let (waker, wake_rx) = poll::waker_pair()?;
        wakers.push(waker.clone());
        mailboxes.push(Arc::new(Mailbox::new(waker)));
        pollers.push((poll::new_poller()?, wake_rx));
    }

    let (job_tx, job_rx): (Sender<Job>, Receiver<Job>) = mpsc::channel();
    let job_rx = Arc::new(Mutex::new(job_rx));

    let mut threads = Vec::with_capacity(nloops + nworkers);
    for worker in 0..nworkers {
        let state = Arc::clone(&state);
        let admission = Arc::clone(&admission);
        let sinks = mailboxes.clone();
        let job_rx = Arc::clone(&job_rx);
        let queue_depth = Arc::clone(&queue_depth);
        threads.push(
            std::thread::Builder::new()
                .name(format!("serve-worker-{worker}"))
                .spawn(move || loop {
                    // Holding the lock only across `recv` keeps workers
                    // independent; the channel closing (all loops gone)
                    // ends the worker. Poison-tolerant: a panic between
                    // `recv` and the catch_unwind below must not take the
                    // whole pool down with it.
                    let job = match job_rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
                        Ok(job) => job,
                        Err(_) => break,
                    };
                    queue_depth.fetch_sub(1, Ordering::Relaxed);
                    // Backstop panic isolation: `handle_job` guards the
                    // handler calls itself (so waiters get structured
                    // 500s), but if anything else in the admission path
                    // panics the worker thread must survive — a dead
                    // worker is permanently lost capacity.
                    if catch_unwind(AssertUnwindSafe(|| {
                        admission::handle_job(&state, &admission, &sinks, job);
                    }))
                    .is_err()
                    {
                        state.metrics().note_panic();
                    }
                })
                .expect("spawn worker thread"),
        );
    }

    let mut listener = Some(listener);
    for (id, (poller, wake_rx)) in pollers.into_iter().enumerate() {
        let poller: Box<dyn Poller> = match &faults {
            Some(plan) => Box::new(FaultyPoller::new(poller, Arc::clone(plan))),
            None => poller,
        };
        let mut event_loop = EventLoop {
            id,
            poller,
            wake_rx,
            mailboxes: mailboxes.clone(),
            mailbox: Arc::clone(&mailboxes[id]),
            listener: if id == 0 { listener.take() } else { None },
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            rr: 0,
            job_tx: job_tx.clone(),
            state: Arc::clone(&state),
            stop: Arc::clone(&stop),
            stopping: false,
            wheel: TimerWheel::new(),
            idle_ms: idle_ms_of(config.read_timeout),
            epoch: Instant::now(),
            queue_depth: Arc::clone(&queue_depth),
            queue_limit: config.queue_limit,
            admission: Arc::clone(&admission),
            faults: faults.clone(),
            accept_resume_at: None,
        };
        event_loop
            .poller
            .register(event_loop.wake_rx.fd(), WAKE, Interest::READABLE)?;
        if let Some(listener) = &event_loop.listener {
            event_loop
                .poller
                .register(listener.as_raw_fd(), LISTENER, Interest::READABLE)?;
        }
        threads.push(
            std::thread::Builder::new()
                .name(format!("serve-loop-{id}"))
                .spawn(move || event_loop.run())
                .expect("spawn event-loop thread"),
        );
    }
    // `job_tx` clones live inside the loops; dropping the original means
    // the worker channel closes exactly when the last loop exits.
    drop(job_tx);

    Ok(EventParts { threads, wakers })
}

/// Converts the configured read timeout into the idle deadline; a zero
/// timeout disables idle closing.
fn idle_ms_of(read_timeout: Duration) -> u64 {
    let ms = u64::try_from(read_timeout.as_millis()).unwrap_or(u64::MAX);
    if ms == 0 {
        u64::MAX / 2
    } else {
        ms
    }
}

impl EventLoop {
    fn now_ms(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX / 2)
    }

    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if let Err(err) = self
                .poller
                .poll(&mut events, Some(Duration::from_millis(TIMER_TICK_MS)))
            {
                // A failing poller cannot make progress; drop every
                // connection rather than spin.
                eprintln!("serve: event loop {} poll failed: {err}", self.id);
                break;
            }
            for event in &events {
                match event.token {
                    LISTENER => self.accept_ready(),
                    WAKE => self.wake_rx.drain(),
                    token => self.service(token - CONN_BASE),
                }
            }
            self.maybe_resume_accept();
            self.drain_mailbox();
            if !self.stopping && self.stop.load(Ordering::SeqCst) {
                self.begin_drain();
            }
            self.expire_timers();
            if self.stopping && self.live == 0 {
                break;
            }
        }
    }

    /// Accepts every waiting connection and deals them round-robin across
    /// the loops (self included, via the mailbox for uniformity).
    ///
    /// Error classification matters here: EMFILE-class errors (fd
    /// exhaustion, out of memory) persist across retries, and with a
    /// level-triggered poller the listener stays readable the whole time —
    /// naive "log and continue" hot-spins the loop at 100% CPU exactly
    /// when the process is starved. Those errors pause accepting for
    /// [`ACCEPT_BACKOFF_MS`] instead (the kernel queues the backlog).
    /// Per-connection failures (the peer reset before we got to it) are
    /// transient and just skip to the next pending connection.
    fn accept_ready(&mut self) {
        if self.accept_resume_at.is_some() {
            return;
        }
        loop {
            let listener = match &self.listener {
                Some(listener) => listener,
                None => return,
            };
            let injected = self.faults.as_ref().and_then(|plan| plan.on_accept());
            let accepted = match injected {
                Some(err) => Err(err),
                None => listener.accept().map(|(stream, _)| stream),
            };
            match accepted {
                Ok(stream) => {
                    self.state.note_accepted();
                    self.state.metrics().note_accept_enqueued();
                    let target = self.rr % self.mailboxes.len();
                    self.rr = self.rr.wrapping_add(1);
                    self.mailboxes[target].push(LoopMsg::Conn(stream));
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => return,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                Err(err)
                    if matches!(
                        err.kind(),
                        io::ErrorKind::ConnectionAborted | io::ErrorKind::ConnectionReset
                    ) => {}
                // Anything else — EMFILE/ENFILE have no stable ErrorKind,
                // so the persistent class is "not known-transient".
                Err(err) => {
                    self.pause_accept(&err);
                    return;
                }
            }
        }
    }

    /// Deregisters the listener and schedules a resume; see
    /// [`EventLoop::accept_ready`].
    fn pause_accept(&mut self, err: &io::Error) {
        let Some(listener) = &self.listener else {
            return;
        };
        eprintln!(
            "serve: accept failed ({err}); pausing accepts for {ACCEPT_BACKOFF_MS}ms"
        );
        let _ = self.poller.deregister(listener.as_raw_fd());
        self.accept_resume_at = Some(self.now_ms() + ACCEPT_BACKOFF_MS);
        self.state.metrics().note_accept_backoff();
    }

    /// Re-registers the listener once the accept backoff expires and
    /// drains whatever backlog built up during the pause.
    fn maybe_resume_accept(&mut self) {
        let Some(resume_at) = self.accept_resume_at else {
            return;
        };
        if self.now_ms() < resume_at {
            return;
        }
        self.accept_resume_at = None;
        let Some(listener) = &self.listener else {
            return;
        };
        if self
            .poller
            .register(listener.as_raw_fd(), LISTENER, Interest::READABLE)
            .is_err()
        {
            // Registration itself failing is the same resource pressure;
            // back off again rather than losing the listener for good.
            self.accept_resume_at = Some(self.now_ms() + ACCEPT_BACKOFF_MS);
            return;
        }
        self.accept_ready();
    }

    fn drain_mailbox(&mut self) {
        for msg in self.mailbox.drain() {
            match msg {
                LoopMsg::Conn(stream) => self.adopt(stream),
                LoopMsg::Complete(completion) => self.apply_completion(completion),
            }
        }
    }

    /// Registers a freshly accepted connection with this loop.
    fn adopt(&mut self, stream: TcpStream) {
        self.state.metrics().note_accept_dequeued();
        if self.stopping {
            // Accepted before the stop flag was observed; turn it away.
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let index = match self.free.pop() {
            Some(index) => index,
            None => {
                self.slots.push(Slot {
                    generation: 0,
                    conn: None,
                });
                self.slots.len() - 1
            }
        };
        let now = self.now_ms();
        let conn = Conn {
            stream,
            buffer: RecvBuffer::new(),
            parser: RequestParser::new(self.state.max_body_bytes()),
            writes: WriteQueue::new(),
            pending: BTreeMap::new(),
            next_seq: 0,
            next_to_send: 0,
            in_flight: 0,
            close_pending: false,
            peer_closed: false,
            paused: false,
            interest: Interest::READABLE,
            last_progress_ms: now,
            cancels: BTreeMap::new(),
        };
        let token = index + CONN_BASE;
        if self
            .poller
            .register(conn.stream.as_raw_fd(), token, Interest::READABLE)
            .is_err()
        {
            self.free.push(index);
            return;
        }
        let generation = self.slots[index].generation;
        self.slots[index].conn = Some(conn);
        self.live += 1;
        self.state.metrics().note_connection_opened();
        self.wheel
            .arm(token, generation, TimerWheel::tick_of(now + self.idle_ms));
        self.service(index);
    }

    /// Queues a finished response onto its connection (dropping it if the
    /// connection died and the slot was reused).
    fn apply_completion(&mut self, completion: Completion) {
        let Some(index) = completion.token.checked_sub(CONN_BASE) else {
            return;
        };
        let Some(slot) = self.slots.get_mut(index) else {
            return;
        };
        if slot.generation != completion.generation {
            return;
        }
        let Some(conn) = slot.conn.as_mut() else {
            return;
        };
        conn.in_flight = conn.in_flight.saturating_sub(1);
        conn.cancels.remove(&completion.seq);
        if completion.close_after {
            conn.close_pending = true;
        }
        conn.pending.insert(
            completion.seq,
            Delivery {
                response: completion.response,
                close_after: completion.close_after,
            },
        );
        self.service(index);
    }

    /// One full service pass over a connection: read, parse/dispatch,
    /// stage and flush responses, update interest, maybe close.
    fn service(&mut self, index: usize) {
        if self.service_inner(index) {
            self.close(index);
        }
    }

    /// The service pass proper; `true` means the connection must close
    /// (done by the caller, outside this function's borrows).
    fn service_inner(&mut self, index: usize) -> bool {
        let now = self.now_ms();
        let Some(slot) = self.slots.get_mut(index) else {
            return false;
        };
        let Some(conn) = slot.conn.as_mut() else {
            return false;
        };
        let generation = slot.generation;
        let token = index + CONN_BASE;

        conn.recompute_pause();

        // --- read ---
        if conn.wants_read() {
            let mut scratch = [0_u8; 16 * 1024];
            let mut read = 0;
            let mut source = FaultyStream::new(&conn.stream, self.faults.as_deref());
            loop {
                match source.read(&mut scratch) {
                    Ok(0) => {
                        conn.peer_closed = true;
                        break;
                    }
                    Ok(n) => {
                        conn.buffer.extend(&scratch[..n]);
                        conn.last_progress_ms = now;
                        read += n;
                        if read >= READ_BUDGET {
                            break;
                        }
                        // A short read drained the socket in practice;
                        // skip the WouldBlock round trip. The poller is
                        // level-triggered, so any bytes that did remain
                        // (or arrive later) fire readiness again.
                        if n < scratch.len() {
                            break;
                        }
                    }
                    Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
                    Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return true,
                }
            }
        }

        // --- parse & dispatch ---
        loop {
            if conn.close_pending {
                // A reject may still be counting skipped body bytes; feed
                // it so `skip_complete` can flip.
                if conn.parser.rejected() {
                    let _ = conn.parser.next_request(&mut conn.buffer);
                }
                break;
            }
            if conn.in_flight + conn.pending.len() >= MAX_PIPELINED {
                break;
            }
            match conn.parser.next_request(&mut conn.buffer) {
                Parsed::Request(request) => {
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    if request.close_after {
                        conn.close_pending = true;
                    }
                    // Per-tenant admission: spend one token from the
                    // tenant's bucket before any compute — including the
                    // inline memo fast path, so a hot cached request
                    // cannot bypass the quota. Probes stay exempt: an
                    // over-quota tenant must not look unhealthy to a
                    // load balancer.
                    if let Some(quota) = self.state.tenant_quota() {
                        if !matches!(request.path.as_str(), "/healthz" | "/metrics") {
                            let tenant = request.tenant.as_deref().unwrap_or("anonymous");
                            if !quota.admit(tenant) {
                                let route = api::route_label(&request.path);
                                self.state.metrics().note_tenant_shed(tenant);
                                self.state.metrics().observe(route, 429, Duration::ZERO);
                                if self.state.log_requests() {
                                    println!(
                                        "{}",
                                        log_line(
                                            route,
                                            429,
                                            Duration::ZERO,
                                            api::RequestTrace::default(),
                                        )
                                    );
                                }
                                let mut response = SharedResponse::from(HttpResponse::error(
                                    429,
                                    "tenant request quota exceeded, retry after backoff",
                                ));
                                response.extra_headers = RETRY_AFTER_HEADER;
                                conn.pending.insert(
                                    seq,
                                    Delivery {
                                        response,
                                        close_after: request.close_after,
                                    },
                                );
                                continue;
                            }
                        }
                    }
                    // Requests that need no computation — /healthz and
                    // rendered /v1/plan memo hits — are answered on the
                    // loop thread: no worker handoff, no waker round
                    // trip. Everything else crosses to the worker pool.
                    // The handler runs under `catch_unwind` so a panic on
                    // the loop thread becomes a structured 500 instead of
                    // taking the whole loop (and every connection on it)
                    // down.
                    let inline = catch_unwind(AssertUnwindSafe(|| {
                        inline_response(&self.state, &request)
                    }))
                    .unwrap_or_else(|_| {
                        self.state.metrics().note_panic();
                        Some(SharedResponse::from(HttpResponse::error(
                            500,
                            "internal error",
                        )))
                    });
                    if let Some(response) = inline {
                        conn.pending.insert(
                            seq,
                            Delivery {
                                response,
                                close_after: request.close_after,
                            },
                        );
                        continue;
                    }
                    // Load shedding: if the worker queue is over its
                    // bound, answer now instead of queueing work we can't
                    // serve in time. A rendered `/v1/plan` memo entry —
                    // even a stale one — is preferred over a 503: the
                    // bytes are a previous 200 for the identical request
                    // (planning is pure), flagged via response header.
                    if self.queue_limit != 0
                        && self.queue_depth.load(Ordering::Relaxed) >= self.queue_limit
                    {
                        let response = shed_response(&self.state, &request);
                        conn.pending.insert(
                            seq,
                            Delivery {
                                response,
                                close_after: request.close_after,
                            },
                        );
                        continue;
                    }
                    conn.in_flight += 1;
                    let started = Instant::now();
                    // Arm the request's token with the deadline now, so
                    // a long handler observes expiry mid-computation —
                    // not only at dequeue — and the loop can fire it on
                    // disconnect.
                    let cancel = CancelToken::with_deadline_opt(
                        self.state
                            .request_deadline()
                            .map(|deadline| started + deadline),
                    );
                    conn.cancels.insert(seq, cancel.clone());
                    let job = Job {
                        loop_id: self.id,
                        token,
                        generation,
                        seq,
                        request,
                        started,
                        cancel,
                    };
                    self.queue_depth.fetch_add(1, Ordering::Relaxed);
                    if self.job_tx.send(job).is_err() {
                        return true;
                    }
                }
                Parsed::Reject { response, .. } => {
                    // Framing errors never reach the workers: answer
                    // directly, in pipeline order, and close after.
                    self.state
                        .metrics()
                        .observe("unparsable", response.status, Duration::ZERO);
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.pending.insert(
                        seq,
                        Delivery {
                            response: response.into(),
                            close_after: true,
                        },
                    );
                    conn.close_pending = true;
                    break;
                }
                Parsed::NeedMore => {
                    if self.stopping && !conn.parser.mid_request(&conn.buffer) {
                        // Draining: between requests means no more will
                        // be served on this connection.
                        conn.close_pending = true;
                    }
                    break;
                }
            }
        }

        // --- stage responses in pipeline order ---
        while let Some(delivery) = conn.pending.remove(&conn.next_to_send) {
            conn.next_to_send += 1;
            // Only the final owed response may announce `connection:
            // close`; intermediate pipelined responses must keep the
            // client reading.
            let last_owed = conn.in_flight == 0 && conn.pending.is_empty();
            let keep_alive = !(delivery.close_after
                || (last_owed && (conn.close_pending || conn.peer_closed || self.stopping)));
            let head = render_head(
                delivery.response.status,
                delivery.response.content_type,
                delivery.response.body.len(),
                keep_alive,
                delivery.response.extra_headers,
            );
            conn.writes.push(head.into_bytes());
            conn.writes.push_shared(Arc::clone(&delivery.response.body));
        }

        // --- flush ---
        if !conn.writes.is_empty() {
            let mut sink = FaultyStream::new(&conn.stream, self.faults.as_deref());
            match conn.writes.flush_into_vectored(&mut sink) {
                Ok(FlushProgress::Drained | FlushProgress::Partial) => {
                    conn.last_progress_ms = now;
                }
                Ok(FlushProgress::Blocked) => {}
                Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return true,
            }
        }

        conn.recompute_pause();

        // --- close / interest ---
        let drained = conn.writes.is_empty() && conn.pending.is_empty() && conn.in_flight == 0;
        if (conn.close_pending && drained && conn.parser.skip_complete())
            || (conn.peer_closed && drained)
        {
            return true;
        }
        let interest = Interest {
            readable: conn.wants_read(),
            writable: !conn.writes.is_empty(),
        };
        if interest.readable != conn.interest.readable
            || interest.writable != conn.interest.writable
        {
            conn.interest = interest;
            if self
                .poller
                .reregister(conn.stream.as_raw_fd(), token, interest)
                .is_err()
            {
                return true;
            }
        }
        false
    }

    /// Handles fired idle deadlines, re-arming connections that made
    /// progress (or have requests in flight) since the timer was set.
    fn expire_timers(&mut self) {
        let now = self.now_ms();
        let now_tick = now / TIMER_TICK_MS;
        for (token, generation) in self.wheel.expired(now_tick) {
            let Some(index) = token.checked_sub(CONN_BASE) else {
                continue;
            };
            let Some(slot) = self.slots.get_mut(index) else {
                continue;
            };
            if slot.generation != generation {
                continue;
            }
            let Some(conn) = slot.conn.as_ref() else {
                continue;
            };
            let deadline_tick = TimerWheel::tick_of(conn.last_progress_ms + self.idle_ms);
            if deadline_tick > now_tick {
                // Progress since arming: push the deadline out.
                self.wheel.arm(token, generation, deadline_tick);
            } else if conn.in_flight > 0 {
                // Never close under a request we owe a response to; check
                // again one idle period later.
                self.wheel
                    .arm(token, generation, TimerWheel::tick_of(now + self.idle_ms));
            } else {
                self.state.metrics().note_idle_closed();
                self.close(index);
            }
        }
    }

    /// Enters draining mode: stop accepting, let mid-request connections
    /// finish, close the rest as they drain.
    fn begin_drain(&mut self) {
        self.stopping = true;
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(listener.as_raw_fd());
        }
        for index in 0..self.slots.len() {
            if self.slots[index].conn.is_some() {
                self.service(index);
            }
        }
    }

    fn close(&mut self, index: usize) {
        let Some(slot) = self.slots.get_mut(index) else {
            return;
        };
        let Some(conn) = slot.conn.take() else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        let generation = slot.generation;
        slot.generation += 1;
        self.free.push(index);
        self.live -= 1;
        self.state.metrics().note_connection_closed();
        // The connection died owing responses: fire each in-flight
        // request's token (stops work only this client waited for) and
        // let the admission layer decide about shared flights — a
        // coalesced computation keeps running while any other client
        // still waits on it.
        if !conn.cancels.is_empty() {
            for cancel in conn.cancels.values() {
                cancel.cancel(admission::DISCONNECT_REASON);
            }
            self.admission
                .disconnected(self.id, index + CONN_BASE, generation);
        }
    }
}

impl Conn {
    /// Whether the loop should keep pulling bytes off this connection.
    fn wants_read(&self) -> bool {
        !self.paused
            && !self.peer_closed
            && (!self.close_pending || !self.parser.skip_complete())
    }

    /// Applies the backpressure hysteresis: pause reading past the high
    /// watermark (or a full pipeline), resume below the low watermark.
    fn recompute_pause(&mut self) {
        let pipeline_full = self.in_flight + self.pending.len() >= MAX_PIPELINED;
        if self.paused {
            if self.writes.below_low_watermark() && !pipeline_full {
                self.paused = false;
            }
        } else if self.writes.over_high_watermark() || pipeline_full {
            self.paused = true;
        }
    }
}

/// Answers on the loop thread the requests that need no computation: the
/// constant `/healthz` body and `/v1/plan` requests the rendered memo can
/// serve coherently (see [`crate::rendered`]). Metrics and request logs
/// observe these exactly like worker-served responses.
fn inline_response(state: &AppState, request: &ParsedRequest) -> Option<SharedResponse> {
    let started = Instant::now();
    let (response, trace) = match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (
            SharedResponse::from(HttpResponse::json(&b"{\"status\":\"ok\"}"[..])),
            api::RequestTrace::default(),
        ),
        ("POST", "/v1/plan") => {
            let (body, trace) = api::rendered_plan(state, &request.body)?;
            (
                SharedResponse {
                    status: 200,
                    content_type: "application/json",
                    body,
                    extra_headers: "",
                },
                trace,
            )
        }
        _ => return None,
    };
    let route = api::route_label(&request.path);
    let latency = started.elapsed();
    state.metrics().observe(route, response.status, latency);
    if state.log_requests() {
        println!("{}", log_line(route, response.status, latency, trace));
    }
    Some(response)
}

/// Builds the overload answer for a request the worker queue cannot take:
/// a stale-but-byte-coherent rendered `/v1/plan` memo hit when one exists
/// (200, flagged with [`STALE_HEADER`]), otherwise a structured 503 with
/// `Retry-After` so well-behaved clients back off instead of hammering.
fn shed_response(state: &AppState, request: &ParsedRequest) -> SharedResponse {
    let route = api::route_label(&request.path);
    if (request.method.as_str(), request.path.as_str()) == ("POST", "/v1/plan") {
        if let Some(body) = state.stale_rendered(&request.body) {
            state.metrics().note_stale_served();
            state.metrics().observe(route, 200, Duration::ZERO);
            if state.log_requests() {
                println!(
                    "{}",
                    log_line(route, 200, Duration::ZERO, api::RequestTrace::default())
                );
            }
            return SharedResponse {
                status: 200,
                content_type: "application/json",
                body,
                extra_headers: STALE_HEADER,
            };
        }
    }
    state.metrics().note_shed(route);
    state.metrics().observe(route, 503, Duration::ZERO);
    if state.log_requests() {
        println!(
            "{}",
            log_line(route, 503, Duration::ZERO, api::RequestTrace::default())
        );
    }
    let mut response = SharedResponse::from(HttpResponse::error(
        503,
        "server overloaded, retry after backoff",
    ));
    response.extra_headers = RETRY_AFTER_HEADER;
    response
}
