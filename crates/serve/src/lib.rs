//! `arrayflex-serve`: the ArrayFlex planner and simulator as an online
//! HTTP service.
//!
//! The DATE'23 reproduction is a library; this crate puts it on the wire
//! so a fleet of clients can ask it to plan networks, sweep configurations
//! and cross-check the cycle-accurate simulator. Everything is built on
//! the standard library alone (the build environment has no crates.io
//! access): a readiness-driven event-loop HTTP/1.1 server with keep-alive
//! and pipelining (a vendored epoll/poll abstraction in [`poll`], the
//! per-connection state machine in [`conn`], singleflight and gather-window
//! batch admission in front of the handlers), a legacy blocking
//! worker-pool server behind `--legacy-serve` ([`http`]), JSON request
//! parsing through the vendored `serde_json` parser, a sharded LRU plan
//! cache ([`arrayflex::PlanCache`]) so repeated plans never recompute,
//! request metrics in Prometheus text format ([`metrics`]), a tiny
//! blocking client ([`client`]) and a load generator ([`loadgen`]).
//!
//! # Determinism contract
//!
//! `POST /v1/plan` and `POST /v1/sweep` responses are **byte-identical**
//! to serializing the corresponding direct library calls
//! (`ArrayFlexModel::plan_*`, `EvaluationSweep::run`), cached or not, for
//! any worker-thread count — the serving layer extends the workspace's
//! serial/parallel determinism contract to the wire (`DESIGN.md` §6).
//!
//! # Quick start
//!
//! ```
//! use arrayflex_serve::http::{serve, ServerConfig};
//! use arrayflex_serve::client;
//!
//! let handle = serve(ServerConfig::default())?;
//! let health = client::get(handle.addr(), "/healthz")?;
//! assert_eq!(health.status, 200);
//! let plan = client::post_json(
//!     handle.addr(),
//!     "/v1/plan",
//!     r#"{"network":"resnet34","rows":128,"cols":128}"#,
//! )?;
//! assert_eq!(plan.status, 200);
//! handle.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

// `deny` rather than `forbid`: the vendored readiness poller (`poll`)
// needs two raw syscall FFI sites and opts back in locally; every other
// module stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod admission;
pub mod api;
pub mod client;
pub mod conn;
mod event_loop;
pub mod fault;
pub mod http;
mod jobs;
pub mod loadgen;
pub mod metrics;
pub mod poll;
mod rendered;

pub use api::{AppState, RequestTrace, SimulateResponse};
pub use fault::{FaultConfig, FaultPlan};
pub use http::{serve, HttpRequest, HttpResponse, ServerConfig, ServerHandle};
pub use loadgen::{
    CacheReport, ChaosConfig, ChaosReport, CombinedReport, LoadgenConfig, LoadgenReport,
    ZipfSampler, ZipfWorkload,
};
pub use metrics::Metrics;
