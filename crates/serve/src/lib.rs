//! `arrayflex-serve`: the ArrayFlex planner and simulator as an online
//! HTTP service.
//!
//! The DATE'23 reproduction is a library; this crate puts it on the wire
//! so a fleet of clients can ask it to plan networks, sweep configurations
//! and cross-check the cycle-accurate simulator. Everything is built on
//! the standard library alone (the build environment has no crates.io
//! access): a hand-rolled HTTP/1.1 server over [`std::net::TcpListener`]
//! with a fixed worker pool ([`http`]), JSON request parsing through the
//! vendored `serde_json` parser, a sharded LRU plan cache
//! ([`arrayflex::PlanCache`]) so repeated plans never recompute, request
//! metrics in Prometheus text format ([`metrics`]), a tiny blocking client
//! ([`client`]) and a load generator ([`loadgen`]).
//!
//! # Determinism contract
//!
//! `POST /v1/plan` and `POST /v1/sweep` responses are **byte-identical**
//! to serializing the corresponding direct library calls
//! (`ArrayFlexModel::plan_*`, `EvaluationSweep::run`), cached or not, for
//! any worker-thread count — the serving layer extends the workspace's
//! serial/parallel determinism contract to the wire (`DESIGN.md` §6).
//!
//! # Quick start
//!
//! ```
//! use arrayflex_serve::http::{serve, ServerConfig};
//! use arrayflex_serve::client;
//!
//! let handle = serve(ServerConfig::default())?;
//! let health = client::get(handle.addr(), "/healthz")?;
//! assert_eq!(health.status, 200);
//! let plan = client::post_json(
//!     handle.addr(),
//!     "/v1/plan",
//!     r#"{"network":"resnet34","rows":128,"cols":128}"#,
//! )?;
//! assert_eq!(plan.status, 200);
//! handle.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod http;
pub mod loadgen;
pub mod metrics;

pub use api::{AppState, RequestTrace, SimulateResponse};
pub use http::{serve, HttpRequest, HttpResponse, ServerConfig, ServerHandle};
pub use loadgen::{
    CacheReport, CombinedReport, LoadgenConfig, LoadgenReport, ZipfSampler, ZipfWorkload,
};
pub use metrics::Metrics;
