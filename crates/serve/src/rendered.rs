//! A bounded memo of fully rendered `/v1/plan` response bodies, keyed by
//! the raw request body bytes.
//!
//! The plan cache already guarantees that a cached plan is byte-identical
//! to recomputing it, but *serving* a cached plan still pays two costs
//! that dwarf the actual lookup: canonicalizing the planning inputs into
//! a [`PlanKey`](arrayflex::PlanKey) (which serializes the whole network)
//! and serializing the plan back out as the response body — together
//! ~150µs per request against a ~2µs shard probe. This memo removes both
//! from the steady-state path: the first serve of a given request body
//! stores the rendered 200 response, and every identical request after
//! that is answered by hashing the (typically tens of bytes) body and
//! cloning an `Arc`.
//!
//! Coherence with the authoritative [`PlanCache`] is by construction, not
//! by trust:
//!
//! * **Byte identity** holds because planning is a pure function of the
//!   request body and serialization is deterministic — the stored bytes
//!   *are* a previous response to the identical request.
//! * **Entry-set changes**: every entry records the plan cache's
//!   [`generation`](PlanCache::generation) at store time; a lookup whose
//!   generation no longer matches drops the entry and falls back to the
//!   full path, so eviction and churn in the plan cache are never papered
//!   over. (Steady-state hit traffic leaves the generation untouched,
//!   which is exactly when the memo is allowed to answer.)
//! * **TTL**: entries age against the plan cache's own clock
//!   ([`PlanCache::clock_now`]) under the same TTL, so a test-injected
//!   manual clock expires rendered responses in lockstep with the plans
//!   they were rendered from.
//! * **Accounting**: a memo hit is still a hit on the cached plan (its
//!   rendered form), and is tallied into the plan cache's hit counter via
//!   [`PlanCache::note_derived_hit`] — `/metrics` cannot tell the two
//!   apart, which keeps the hit/miss arithmetic of the lifecycle tests
//!   exact.

use arrayflex::PlanCache;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Entries kept (LRU-evicted beyond this). Sized for serving workloads —
/// a handful of hot request bodies — not as a second plan cache.
const CAPACITY: usize = 64;

/// Largest request body + rendered response this memo will hold. Inline
/// networks can be arbitrarily large; such requests stay on the full
/// path rather than letting one giant plan pin the memo's memory.
const MAX_ENTRY_BYTES: usize = 256 * 1024;

/// One rendered 200 response and the coherence stamps it was stored under.
#[derive(Debug)]
struct Entry {
    body: Arc<Vec<u8>>,
    /// Hash of the plan's canonical [`PlanKey`](arrayflex::PlanKey) — what
    /// request logs and the derived-hit tally identify the plan by.
    key_hash: u64,
    /// Plan-cache generation this entry is valid for.
    generation: u64,
    /// Plan-cache clock reading at store time (ages against the TTL).
    written_at: Duration,
    /// Logical LRU clock reading of the last lookup that returned this.
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<Vec<u8>, Entry>,
    clock: u64,
}

/// The memo. One per [`AppState`](crate::api::AppState); see the module
/// docs for the coherence rules.
#[derive(Debug, Default)]
pub(crate) struct RenderedCache {
    inner: Mutex<Inner>,
}

impl RenderedCache {
    /// Returns the rendered response body and plan-key hash for
    /// `request_body` if a coherent entry exists (see the module docs).
    /// Tallies the derived hit into `cache`'s hit counter.
    pub(crate) fn lookup(
        &self,
        cache: &PlanCache,
        request_body: &[u8],
    ) -> Option<(Arc<Vec<u8>>, u64)> {
        let generation = cache.generation();
        // Poison-tolerant: a caught handler panic elsewhere must not turn
        // every later memo lookup into a second panic (the map's
        // per-entry invariants hold regardless).
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(entry) = inner.map.get_mut(request_body) {
            let expired = cache
                .ttl()
                .is_some_and(|ttl| cache.clock_now().saturating_sub(entry.written_at) >= ttl);
            if entry.generation == generation && !expired {
                entry.last_used = clock;
                let found = (Arc::clone(&entry.body), entry.key_hash);
                drop(inner);
                cache.note_derived_hit(found.1);
                return Some(found);
            }
            // Stale (evicted-under, churned past, or expired): drop it and
            // let the full path repopulate under the current stamps.
            inner.map.remove(request_body);
        }
        None
    }

    /// Stores the rendered 200 response for `request_body`, stamped with
    /// the plan cache's current generation and clock. Oversized entries
    /// are skipped; beyond [`CAPACITY`] the least-recently-used entry is
    /// evicted.
    pub(crate) fn store(
        &self,
        cache: &PlanCache,
        request_body: &[u8],
        key_hash: u64,
        body: Arc<Vec<u8>>,
    ) {
        if request_body.len() + body.len() > MAX_ENTRY_BYTES {
            return;
        }
        let generation = cache.generation();
        let written_at = cache.clock_now();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.clock += 1;
        let clock = inner.clock;
        inner.map.insert(
            request_body.to_vec(),
            Entry {
                body,
                key_hash,
                generation,
                written_at,
                last_used: clock,
            },
        );
        while inner.map.len() > CAPACITY {
            let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            inner.map.remove(&oldest);
        }
    }

    /// Returns the rendered response body for `request_body` **ignoring
    /// coherence** — generation mismatches and TTL expiry are tolerated
    /// and the entry is left in place. The graceful-degradation path: a
    /// server shedding load may answer `/v1/plan` from here (flagged via
    /// response header) instead of queueing or 503ing. Byte identity
    /// still holds — the stored bytes are a previous 200 for the
    /// identical request and planning is pure — but the entry may predate
    /// plan-cache churn, so the coherent [`RenderedCache::lookup`] must
    /// stay the only path that tallies cache hits.
    pub(crate) fn lookup_stale(&self, request_body: &[u8]) -> Option<Arc<Vec<u8>>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.clock += 1;
        let clock = inner.clock;
        let entry = inner.map.get_mut(request_body)?;
        entry.last_used = clock;
        Some(Arc::clone(&entry.body))
    }

    /// Number of rendered responses currently held (for tests).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().expect("rendered cache poisoned").map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(n: u8) -> Vec<u8> {
        vec![n; 8]
    }

    #[test]
    fn lookup_misses_until_stored_then_shares_the_arc() {
        let cache = PlanCache::new(4);
        let rendered = RenderedCache::default();
        assert!(rendered.lookup(&cache, &body(1)).is_none());
        let stored = Arc::new(b"response".to_vec());
        rendered.store(&cache, &body(1), 7, Arc::clone(&stored));
        let (found, hash) = rendered.lookup(&cache, &body(1)).unwrap();
        assert!(Arc::ptr_eq(&found, &stored));
        assert_eq!(hash, 7);
        // The derived hit was tallied into the plan cache's counters.
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn a_generation_change_invalidates_entries() {
        use arrayflex::{ArrayFlexModel, PlanKind};
        use cnn::DepthwiseMapping;

        let cache = PlanCache::new(4);
        let rendered = RenderedCache::default();
        rendered.store(&cache, &body(1), 7, Arc::new(b"response".to_vec()));
        assert!(rendered.lookup(&cache, &body(1)).is_some());
        // Any plan-cache insert bumps the generation; the memo entry is
        // dropped on its next lookup rather than served stale.
        let model = ArrayFlexModel::new(8, 8).unwrap();
        let plan = model
            .plan_cached(
                &cache,
                &cnn::models::resnet18(),
                DepthwiseMapping::default(),
                PlanKind::ArrayFlex,
            )
            .unwrap();
        drop(plan);
        assert!(rendered.lookup(&cache, &body(1)).is_none());
        assert_eq!(rendered.len(), 0);
    }

    #[test]
    fn entries_expire_on_the_plan_caches_clock() {
        use arrayflex::ManualClock;

        let clock = Arc::new(ManualClock::new());
        let cache = PlanCache::builder()
            .ttl(Duration::from_secs(60))
            .clock(Arc::clone(&clock) as _)
            .build();
        let rendered = RenderedCache::default();
        rendered.store(&cache, &body(1), 7, Arc::new(b"response".to_vec()));
        assert!(rendered.lookup(&cache, &body(1)).is_some());
        clock.advance(Duration::from_secs(60));
        assert!(rendered.lookup(&cache, &body(1)).is_none());
    }

    #[test]
    fn stale_lookup_survives_generation_changes_and_expiry() {
        use arrayflex::{ArrayFlexModel, ManualClock, PlanKind};
        use cnn::DepthwiseMapping;

        let clock = Arc::new(ManualClock::new());
        let cache = PlanCache::builder()
            .ttl(Duration::from_secs(60))
            .clock(Arc::clone(&clock) as _)
            .build();
        let rendered = RenderedCache::default();
        let stored = Arc::new(b"response".to_vec());
        rendered.store(&cache, &body(1), 7, Arc::clone(&stored));

        // Bump the generation (plan insert) and blow the TTL: the
        // coherent path refuses, the stale path still serves the same
        // bytes and leaves the entry in place.
        let model = ArrayFlexModel::new(8, 8).unwrap();
        model
            .plan_cached(
                &cache,
                &cnn::models::resnet18(),
                DepthwiseMapping::default(),
                PlanKind::ArrayFlex,
            )
            .unwrap();
        clock.advance(Duration::from_secs(120));
        let stale = rendered.lookup_stale(&body(1)).expect("stale entry serves");
        assert!(Arc::ptr_eq(&stale, &stored));
        assert_eq!(rendered.len(), 1, "stale lookup must not remove the entry");
        // The coherent lookup still refuses (and drops) it afterwards.
        assert!(rendered.lookup(&cache, &body(1)).is_none());
        assert!(rendered.lookup_stale(&body(1)).is_none());
    }

    #[test]
    fn capacity_evicts_least_recently_used_and_oversize_is_skipped() {
        let cache = PlanCache::new(4);
        let rendered = RenderedCache::default();
        for n in 0..=CAPACITY {
            rendered.store(&cache, &body(n as u8), n as u64, Arc::new(vec![0; 16]));
        }
        assert_eq!(rendered.len(), CAPACITY);
        // The first-stored (least recently used) entry is the one gone.
        assert!(rendered.lookup(&cache, &body(0)).is_none());
        rendered.store(&cache, &body(99), 99, Arc::new(vec![0; MAX_ENTRY_BYTES]));
        assert!(rendered.lookup(&cache, &body(99)).is_none());
    }
}
