//! Socket-free connection machinery for the event-loop server.
//!
//! Everything in this module is pure state over byte buffers, so the whole
//! per-connection protocol layer is unit- and property-testable without
//! opening a single socket:
//!
//! * [`RecvBuffer`] — a growable, compacting read buffer the event loop
//!   appends raw socket bytes into;
//! * [`RequestParser`] — an incremental HTTP/1.1 request parser that
//!   consumes the buffer request by request, regardless of how the bytes
//!   were chunked by the network. It reuses the same framing validators as
//!   the legacy blocking server (`Content-Length` hygiene per RFC 9112
//!   §6.3, head-size caps, structured rejects), adds `Connection`
//!   keep-alive semantics, and rejects `Transfer-Encoding` with a 501 —
//!   a chunked body this server cannot parse would otherwise be misframed
//!   as the next pipelined request;
//! * [`WriteQueue`] — a bounded queue of response byte segments with
//!   high/low watermarks, so a slow reader pauses request intake instead
//!   of growing server memory;
//! * [`TimerWheel`] — a hashed timing wheel driving idle / slowloris
//!   deadlines with O(1) arm and fire.

use crate::http::HttpResponse;

/// Hard cap on the request head (request line plus headers), shared with
/// the legacy blocking parser.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// How much of a rejected request's body is skipped (and discarded) before
/// the connection is closed. Unread bytes left in the socket's receive
/// buffer make `close()` send a TCP RST on common stacks, which would
/// destroy the queued error response; skipping a bounded amount lets
/// reasonable oversized uploads finish and read the structured error.
pub const REJECT_DRAIN_BYTES: u64 = 8 * 1024 * 1024;

// ---------------------------------------------------------------------------
// Shared head validators (used by both the event-loop parser and the
// legacy blocking server in `http.rs`)
// ---------------------------------------------------------------------------

/// Validates one request line, returning `(method, path, is_http10)`.
///
/// # Errors
///
/// Returns the structured 400 to respond with when the line is malformed.
pub fn parse_request_line(line: &str) -> Result<(String, String, bool), HttpResponse> {
    let mut parts = line.split(' ');
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpResponse::error(400, "malformed request line"));
    };
    if parts.next().is_some()
        || method.is_empty()
        || path.is_empty()
        || !version.starts_with("HTTP/1.")
    {
        return Err(HttpResponse::error(400, "malformed request line"));
    }
    Ok((method.to_owned(), path.to_owned(), version == "HTTP/1.0"))
}

/// Accumulates validated header state while head lines stream in. One
/// instance per request; both the legacy line-at-a-time reader and the
/// incremental parser feed every header line through
/// [`HeadFields::header_line`], so the framing rules cannot drift apart.
#[derive(Debug, Default)]
pub struct HeadFields {
    /// The validated `Content-Length`, when one was sent.
    pub content_length: Option<usize>,
    /// `true` once a `Connection: close` token was seen.
    pub connection_close: bool,
    /// `true` once a `Connection: keep-alive` token was seen.
    pub connection_keep_alive: bool,
    /// The validated `x-arrayflex-tenant` value, when one was sent (the
    /// key the per-tenant quota and job accounting layers use).
    pub tenant: Option<String>,
}

/// Longest accepted `x-arrayflex-tenant` value. Tenant names become
/// Prometheus label values and quota-map keys, so unbounded
/// client-chosen strings are rejected up front.
pub const MAX_TENANT_BYTES: usize = 64;

impl HeadFields {
    /// Validates one header line (without its line terminator).
    ///
    /// # Errors
    ///
    /// Returns the structured response to reject the request with:
    /// 400 for malformed headers and `Content-Length` hygiene violations,
    /// 501 for any `Transfer-Encoding` (this server only frames bodies by
    /// `Content-Length`; accepting the header and then treating the coded
    /// body as raw bytes would misframe a chunked body as the next
    /// pipelined request).
    pub fn header_line(&mut self, header: &str) -> Result<(), HttpResponse> {
        let Some((name, value)) = header.split_once(':') else {
            return Err(HttpResponse::error(400, "malformed header"));
        };
        let name = name.trim();
        if name.eq_ignore_ascii_case("content-length") {
            // RFC 9112 §6.3 hygiene: only plain decimal digit strings (no
            // sign, no whitespace inside, no comma list — `usize::parse`
            // alone would accept `+5`), and repeated Content-Length headers
            // must all agree; conflicting values are a request-smuggling
            // vector, not a recoverable ambiguity.
            let raw = value.trim();
            if raw.is_empty() || !raw.bytes().all(|b| b.is_ascii_digit()) {
                return Err(HttpResponse::error(400, "invalid content-length"));
            }
            let Ok(length) = raw.parse::<usize>() else {
                return Err(HttpResponse::error(400, "invalid content-length"));
            };
            if self.content_length.is_some_and(|previous| previous != length) {
                return Err(HttpResponse::error(
                    400,
                    "conflicting content-length headers",
                ));
            }
            self.content_length = Some(length);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpResponse::error(
                501,
                "transfer-encoding is not supported; frame the body with content-length",
            ));
        } else if name.eq_ignore_ascii_case("connection") {
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    self.connection_close = true;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    self.connection_keep_alive = true;
                }
            }
        } else if name.eq_ignore_ascii_case("x-arrayflex-tenant") {
            // Tenant names feed metric labels and quota keys: bound the
            // length and restrict to printable ASCII without quotes or
            // backslashes (which would need escaping in Prometheus label
            // values).
            let raw = value.trim();
            if raw.is_empty()
                || raw.len() > MAX_TENANT_BYTES
                || !raw
                    .bytes()
                    .all(|b| (0x21..=0x7e).contains(&b) && b != b'"' && b != b'\\')
            {
                return Err(HttpResponse::error(400, "invalid x-arrayflex-tenant"));
            }
            self.tenant = Some(raw.to_owned());
        }
        Ok(())
    }

    /// Whether the connection must close after this request's response:
    /// an explicit `Connection: close`, or HTTP/1.0 without an explicit
    /// `keep-alive`.
    #[must_use]
    pub fn close_after(&self, http10: bool) -> bool {
        self.connection_close || (http10 && !self.connection_keep_alive)
    }
}

// ---------------------------------------------------------------------------
// RecvBuffer
// ---------------------------------------------------------------------------

/// A growable byte buffer with an O(1) consume cursor. The event loop
/// appends raw socket reads at the tail; the parser consumes framed
/// requests off the head. Consumed space is reclaimed by compaction once
/// it dominates the buffer, so steady-state keep-alive traffic reuses one
/// allocation.
#[derive(Debug, Default)]
pub struct RecvBuffer {
    data: Vec<u8>,
    start: usize,
}

impl RecvBuffer {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The unconsumed bytes.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.data[self.start..]
    }

    /// Number of unconsumed bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// `true` when no unconsumed bytes remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends freshly read bytes at the tail.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.compact_if_worthwhile();
        self.data.extend_from_slice(bytes);
    }

    /// Consumes `n` bytes off the head.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the unconsumed length.
    pub fn consume(&mut self, n: usize) {
        assert!(n <= self.len(), "consume past the buffered bytes");
        self.start += n;
        if self.start == self.data.len() {
            self.data.clear();
            self.start = 0;
        }
    }

    fn compact_if_worthwhile(&mut self) {
        // Compact when at least 4 KiB is dead *and* the live remainder is
        // smaller than the dead prefix, so compaction is O(live) and rare.
        if self.start >= 4096 && self.len() < self.start {
            self.data.copy_within(self.start.., 0);
            self.data.truncate(self.len());
            self.start = 0;
        }
    }
}

// ---------------------------------------------------------------------------
// RequestParser
// ---------------------------------------------------------------------------

/// One fully framed request extracted off the buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedRequest {
    /// Request method, as received.
    pub method: String,
    /// Request path.
    pub path: String,
    /// The complete request body.
    pub body: Vec<u8>,
    /// Whether the connection must close after this request's response.
    pub close_after: bool,
    /// The `x-arrayflex-tenant` value, when the request carried one.
    pub tenant: Option<String>,
}

/// Outcome of one [`RequestParser::next_request`] call.
#[derive(Debug)]
pub enum Parsed {
    /// A complete request was framed and consumed off the buffer.
    Request(ParsedRequest),
    /// The request violates a framing invariant: respond with `response`,
    /// skip up to `skip` announced body bytes as they arrive, then close.
    Reject {
        /// The structured error response to write.
        response: HttpResponse,
        /// Announced body bytes to discard before closing (bounded by
        /// [`REJECT_DRAIN_BYTES`]).
        skip: u64,
    },
    /// Not enough bytes buffered yet; read more.
    NeedMore,
}

#[derive(Debug)]
enum ParseState {
    /// Scanning for the end of the next request head. `scanned` bytes of
    /// the buffer head are known not to contain the terminator yet, so
    /// chunked arrival never rescans from the start.
    Head { scanned: usize },
    /// The head parsed; `remaining` body bytes are still outstanding.
    Body {
        method: String,
        path: String,
        close_after: bool,
        length: usize,
        tenant: Option<String>,
    },
    /// A reject was emitted; discard `remaining` announced body bytes,
    /// then the connection closes. No further requests are parsed.
    Skip { remaining: u64 },
}

/// Incremental HTTP/1.1 request parser over a [`RecvBuffer`].
///
/// Feed bytes into the buffer in arbitrary chunks and call
/// [`RequestParser::next_request`] until it returns [`Parsed::NeedMore`];
/// the sequence of produced requests is a pure function of the byte
/// stream, independent of chunk boundaries (property-tested in
/// `tests/conn_machine.rs`).
#[derive(Debug)]
pub struct RequestParser {
    state: ParseState,
    max_body: usize,
}

impl RequestParser {
    /// Creates a parser enforcing the given body-size cap.
    #[must_use]
    pub fn new(max_body: usize) -> Self {
        Self {
            state: ParseState::Head { scanned: 0 },
            max_body,
        }
    }

    /// `true` while the parser is mid-request (a head or body is partially
    /// received, or buffered bytes await parsing). A draining server keeps
    /// such connections alive until the request completes.
    #[must_use]
    pub fn mid_request(&self, buffer: &RecvBuffer) -> bool {
        match self.state {
            ParseState::Head { .. } => !buffer.is_empty(),
            ParseState::Body { .. } => true,
            ParseState::Skip { .. } => false,
        }
    }

    /// `true` once the parser rejected a request: the connection serves
    /// the queued error response and closes, so no further requests are
    /// ever produced.
    #[must_use]
    pub fn rejected(&self) -> bool {
        matches!(self.state, ParseState::Skip { .. })
    }

    /// Attempts to frame the next request off `buffer`.
    pub fn next_request(&mut self, buffer: &mut RecvBuffer) -> Parsed {
        loop {
            match &mut self.state {
                ParseState::Head { scanned } => {
                    let bytes = buffer.bytes();
                    match find_head_end(bytes, *scanned) {
                        HeadScan::Complete(head_len) => {
                            if head_len > MAX_HEAD_BYTES {
                                return self.reject(
                                    buffer,
                                    HttpResponse::error(431, "request head too long"),
                                    0,
                                );
                            }
                            let (method, path, fields, http10) =
                                match parse_head(&bytes[..head_len]) {
                                    Ok(parsed) => parsed,
                                    Err(response) => return self.reject(buffer, response, 0),
                                };
                            let length = fields.content_length.unwrap_or(0);
                            if length > self.max_body {
                                let response = HttpResponse::error(
                                    413,
                                    &format!(
                                        "request body of {length} bytes exceeds the {}-byte limit",
                                        self.max_body
                                    ),
                                );
                                buffer.consume(head_len);
                                return self.reject(buffer, response, length as u64);
                            }
                            let close_after = fields.close_after(http10);
                            buffer.consume(head_len);
                            self.state = ParseState::Body {
                                method,
                                path,
                                close_after,
                                length,
                                tenant: fields.tenant,
                            };
                        }
                        HeadScan::NeedMore(scanned_now) => {
                            if buffer.len() > MAX_HEAD_BYTES {
                                return self.reject(
                                    buffer,
                                    HttpResponse::error(431, "request head too long"),
                                    0,
                                );
                            }
                            *scanned = scanned_now;
                            return Parsed::NeedMore;
                        }
                    }
                }
                ParseState::Body {
                    method,
                    path,
                    close_after,
                    length,
                    tenant,
                } => {
                    if buffer.len() < *length {
                        return Parsed::NeedMore;
                    }
                    let body = buffer.bytes()[..*length].to_vec();
                    let request = ParsedRequest {
                        method: std::mem::take(method),
                        path: std::mem::take(path),
                        body,
                        close_after: *close_after,
                        tenant: tenant.take(),
                    };
                    let length = *length;
                    buffer.consume(length);
                    self.state = ParseState::Head { scanned: 0 };
                    return Parsed::Request(request);
                }
                ParseState::Skip { remaining } => {
                    let discard = (buffer.len() as u64).min(*remaining) as usize;
                    buffer.consume(discard);
                    *remaining -= discard as u64;
                    return Parsed::NeedMore;
                }
            }
        }
    }

    /// `true` once a pending reject has discarded all the body bytes it
    /// promised to skip (the connection may then close without an RST
    /// racing the error response off the wire).
    #[must_use]
    pub fn skip_complete(&self) -> bool {
        match self.state {
            ParseState::Skip { remaining } => remaining == 0,
            _ => true,
        }
    }

    fn reject(&mut self, buffer: &mut RecvBuffer, response: HttpResponse, announced: u64) -> Parsed {
        let skip = announced.min(REJECT_DRAIN_BYTES);
        // Whatever is already buffered counts against the skip budget.
        let discard = (buffer.len() as u64).min(skip) as usize;
        buffer.consume(discard);
        self.state = ParseState::Skip {
            remaining: skip - discard as u64,
        };
        Parsed::Reject { response, skip }
    }
}

/// Result of scanning for the head terminator.
enum HeadScan {
    /// The head (including its terminating blank line) spans this many
    /// bytes.
    Complete(usize),
    /// No terminator yet; this many bytes are known terminator-free.
    NeedMore(usize),
}

/// Finds the end of the request head: the first `\n` immediately followed
/// by `\n` or `\r\n` (tolerating bare-LF line endings like the legacy
/// reader). Scanning resumes at `scanned`, so chunked arrival is O(n)
/// total.
fn find_head_end(bytes: &[u8], scanned: usize) -> HeadScan {
    let mut i = scanned;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            match bytes.get(i + 1) {
                Some(b'\n') => return HeadScan::Complete(i + 2),
                Some(b'\r') => match bytes.get(i + 2) {
                    Some(b'\n') => return HeadScan::Complete(i + 3),
                    Some(_) => {}
                    // `\n\r` at the tail: the next byte decides.
                    None => return HeadScan::NeedMore(i),
                },
                Some(_) => {}
                // Trailing `\n`: the next byte decides.
                None => return HeadScan::NeedMore(i),
            }
        }
        i += 1;
    }
    HeadScan::NeedMore(bytes.len())
}

/// Parses and validates one complete head block (request line + headers,
/// including the terminating blank line).
fn parse_head(head: &[u8]) -> Result<(String, String, HeadFields, bool), HttpResponse> {
    let text = std::str::from_utf8(head)
        .map_err(|_| HttpResponse::error(400, "request head is not valid UTF-8"))?;
    let mut lines = text.split('\n').map(|line| line.strip_suffix('\r').unwrap_or(line));
    let request_line = lines.next().unwrap_or("");
    let (method, path, http10) = parse_request_line(request_line)?;
    let mut fields = HeadFields::default();
    for header in lines {
        if header.is_empty() {
            break;
        }
        fields.header_line(header)?;
    }
    Ok((method, path, fields, http10))
}

// ---------------------------------------------------------------------------
// WriteQueue
// ---------------------------------------------------------------------------

/// Default high watermark of a connection's write queue: above this many
/// queued-but-unwritten bytes the event loop stops reading new requests
/// off the connection (backpressure against slow readers).
pub const WRITE_HIGH_WATERMARK: usize = 1 << 20;

/// Once a paused connection's write queue drains below this, reading
/// resumes.
pub const WRITE_LOW_WATERMARK: usize = 64 * 1024;

/// A queue of response byte segments awaiting the socket, with watermark
/// accounting. Segments are written front to back; partially written
/// fronts keep a cursor so a `WouldBlock` mid-segment resumes where it
/// stopped.
///
/// Segments come in two flavors: owned byte vectors (response heads,
/// uncoalesced bodies) and shared [`std::sync::Arc`] bodies, so a
/// singleflight response fanned out to N waiting connections is queued N
/// times without copying the bytes N times.
#[derive(Debug, Default)]
pub struct WriteQueue {
    segments: std::collections::VecDeque<Segment>,
    front_written: usize,
    queued_bytes: usize,
}

/// One queued run of response bytes.
#[derive(Debug)]
enum Segment {
    Owned(Vec<u8>),
    Shared(std::sync::Arc<Vec<u8>>),
}

impl Segment {
    fn bytes(&self) -> &[u8] {
        match self {
            Segment::Owned(v) => v,
            Segment::Shared(v) => v,
        }
    }
}

/// What a flush attempt achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushProgress {
    /// The queue is fully drained.
    Drained,
    /// Bytes were written but the sink blocked before the queue emptied.
    Partial,
    /// The sink blocked before any byte was written.
    Blocked,
}

impl WriteQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues one response's bytes.
    pub fn push(&mut self, bytes: Vec<u8>) {
        self.queued_bytes += bytes.len();
        self.segments.push_back(Segment::Owned(bytes));
    }

    /// Queues a shared response body without copying it: coalesced
    /// responses delivered to many connections all reference one
    /// allocation.
    pub fn push_shared(&mut self, bytes: std::sync::Arc<Vec<u8>>) {
        self.queued_bytes += bytes.len();
        self.segments.push_back(Segment::Shared(bytes));
    }

    /// Bytes queued and not yet written.
    #[must_use]
    pub fn queued_bytes(&self) -> usize {
        self.queued_bytes
    }

    /// `true` when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// `true` while the queue is over [`WRITE_HIGH_WATERMARK`].
    #[must_use]
    pub fn over_high_watermark(&self) -> bool {
        self.queued_bytes > WRITE_HIGH_WATERMARK
    }

    /// `true` once the queue drained to [`WRITE_LOW_WATERMARK`] or below.
    #[must_use]
    pub fn below_low_watermark(&self) -> bool {
        self.queued_bytes <= WRITE_LOW_WATERMARK
    }

    /// Writes as much queued data as `sink` accepts. `WouldBlock` (and
    /// `Interrupted`) stop the flush without error; other I/O errors
    /// propagate (the connection is then closed by the caller).
    ///
    /// # Errors
    ///
    /// Returns any I/O error other than `WouldBlock` / `Interrupted`.
    pub fn flush_into(&mut self, sink: &mut impl std::io::Write) -> std::io::Result<FlushProgress> {
        let mut wrote_any = false;
        while let Some(front) = self.segments.front() {
            let pending = &front.bytes()[self.front_written..];
            match sink.write(pending) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    wrote_any = true;
                    self.advance(n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return Ok(if wrote_any {
                        FlushProgress::Partial
                    } else {
                        FlushProgress::Blocked
                    });
                }
                Err(e) => return Err(e),
            }
        }
        Ok(FlushProgress::Drained)
    }

    /// Like [`WriteQueue::flush_into`], but gathers up to
    /// [`MAX_IOV_SEGMENTS`] segments into one vectored write per syscall —
    /// a pipelined burst of head+body pairs drains in one `writev` instead
    /// of one `write` per segment.
    ///
    /// # Errors
    ///
    /// Returns any I/O error other than `WouldBlock` / `Interrupted`.
    pub fn flush_into_vectored(
        &mut self,
        sink: &mut impl std::io::Write,
    ) -> std::io::Result<FlushProgress> {
        let mut wrote_any = false;
        while !self.segments.is_empty() {
            let mut slices: Vec<std::io::IoSlice<'_>> = Vec::with_capacity(
                self.segments.len().min(MAX_IOV_SEGMENTS),
            );
            for (i, segment) in self.segments.iter().take(MAX_IOV_SEGMENTS).enumerate() {
                let bytes = segment.bytes();
                let pending = if i == 0 { &bytes[self.front_written..] } else { bytes };
                slices.push(std::io::IoSlice::new(pending));
            }
            match sink.write_vectored(&slices) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    wrote_any = true;
                    self.advance(n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return Ok(if wrote_any {
                        FlushProgress::Partial
                    } else {
                        FlushProgress::Blocked
                    });
                }
                Err(e) => return Err(e),
            }
        }
        Ok(FlushProgress::Drained)
    }

    /// Accounts `n` freshly written bytes, popping fully drained front
    /// segments.
    fn advance(&mut self, mut n: usize) {
        self.queued_bytes -= n;
        while n > 0 {
            let front_len = self.segments.front().expect("advance past queue").bytes().len();
            let pending = front_len - self.front_written;
            if n >= pending {
                n -= pending;
                self.segments.pop_front();
                self.front_written = 0;
            } else {
                self.front_written += n;
                n = 0;
            }
        }
    }
}

/// Cap on segments gathered into one vectored write; matches typical
/// `UIO_MAXIOV`-friendly batch sizes without ever allocating huge iovec
/// arrays.
pub const MAX_IOV_SEGMENTS: usize = 32;

// ---------------------------------------------------------------------------
// FaultyStream — the stream-I/O fault shim
// ---------------------------------------------------------------------------

/// The event loop's stream-I/O shim: every read and write on a connection
/// goes through one of these. With no [`FaultPlan`](crate::fault::FaultPlan)
/// attached it is a zero-cost passthrough; with one, each operation first
/// asks the plan whether to fail with `EINTR` / `WouldBlock` /
/// `ECONNRESET` or truncate to a short transfer — the exact error surface
/// real sockets produce, injected deterministically from a seed.
///
/// Short faults clamp the buffer and then perform the real operation, so
/// injected faults can *reorder and fragment* traffic but never corrupt
/// it: a 200 still carries the bytes the handler produced.
pub struct FaultyStream<'a, S> {
    inner: S,
    plan: Option<&'a crate::fault::FaultPlan>,
}

impl<'a, S> FaultyStream<'a, S> {
    /// Wraps `inner`; `plan` of `None` makes every call a passthrough.
    pub fn new(inner: S, plan: Option<&'a crate::fault::FaultPlan>) -> Self {
        Self { inner, plan }
    }
}

fn fault_error(kind: std::io::ErrorKind) -> std::io::Error {
    std::io::Error::new(kind, "injected fault")
}

impl<S: std::io::Read> std::io::Read for FaultyStream<'_, S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        use crate::fault::IoFault;
        if let Some(plan) = self.plan {
            match plan.on_read(buf.len()) {
                IoFault::None => {}
                IoFault::Eintr => return Err(fault_error(std::io::ErrorKind::Interrupted)),
                IoFault::WouldBlock => return Err(fault_error(std::io::ErrorKind::WouldBlock)),
                IoFault::Reset => return Err(fault_error(std::io::ErrorKind::ConnectionReset)),
                IoFault::Short(n) => return self.inner.read(&mut buf[..n]),
            }
        }
        self.inner.read(buf)
    }
}

impl<S: std::io::Write> std::io::Write for FaultyStream<'_, S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        use crate::fault::IoFault;
        if let Some(plan) = self.plan {
            match plan.on_write(buf.len()) {
                IoFault::None => {}
                IoFault::Eintr => return Err(fault_error(std::io::ErrorKind::Interrupted)),
                IoFault::WouldBlock => return Err(fault_error(std::io::ErrorKind::WouldBlock)),
                IoFault::Reset => return Err(fault_error(std::io::ErrorKind::ConnectionReset)),
                IoFault::Short(n) => return self.inner.write(&buf[..n.min(buf.len())]),
            }
        }
        self.inner.write(buf)
    }

    fn write_vectored(&mut self, bufs: &[std::io::IoSlice<'_>]) -> std::io::Result<usize> {
        use crate::fault::IoFault;
        if let Some(plan) = self.plan {
            let total: usize = bufs.iter().map(|b| b.len()).sum();
            match plan.on_write(total) {
                IoFault::None => {}
                IoFault::Eintr => return Err(fault_error(std::io::ErrorKind::Interrupted)),
                IoFault::WouldBlock => return Err(fault_error(std::io::ErrorKind::WouldBlock)),
                IoFault::Reset => return Err(fault_error(std::io::ErrorKind::ConnectionReset)),
                IoFault::Short(n) => {
                    // A short vectored write lands entirely in the first
                    // non-empty slice, like a socket running out of send
                    // buffer mid-iovec.
                    let first = bufs
                        .iter()
                        .find(|b| !b.is_empty())
                        .map(|b| &b[..])
                        .unwrap_or(&[]);
                    if first.is_empty() {
                        return Ok(0);
                    }
                    return self.inner.write(&first[..n.min(first.len())]);
                }
            }
        }
        self.inner.write_vectored(bufs)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

// ---------------------------------------------------------------------------
// TimerWheel
// ---------------------------------------------------------------------------

/// Tick granularity of the timer wheel. Deadlines fire within one tick of
/// their nominal time (always late, never early).
pub const TIMER_TICK_MS: u64 = 25;

const TIMER_SLOTS: usize = 256;

/// A hashed timing wheel over connection tokens.
///
/// Arming is O(1): the deadline hashes to `slot = tick % TIMER_SLOTS` and
/// the `(token, generation, tick)` triple is appended there. Deadlines
/// further out than one wheel revolution simply stay in their slot and
/// are re-queued when the slot fires early (the classic hashed-wheel
/// cascade). Cancellation is lazy: the event loop validates the
/// generation (and the connection's *current* deadline) when an entry
/// fires, so re-arming never has to find and remove stale entries.
#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<TimerEntry>>,
    /// The next tick to be processed by [`TimerWheel::expired`].
    cursor: u64,
}

#[derive(Debug, Clone, Copy)]
struct TimerEntry {
    token: usize,
    generation: u64,
    tick: u64,
}

impl TimerWheel {
    /// Creates a wheel whose tick 0 corresponds to `now`.
    #[must_use]
    pub fn new() -> Self {
        Self {
            slots: (0..TIMER_SLOTS).map(|_| Vec::new()).collect(),
            cursor: 0,
        }
    }

    /// Converts a duration from the wheel epoch into a tick number
    /// (rounding up, so entries never fire early).
    #[must_use]
    pub fn tick_of(since_epoch_ms: u64) -> u64 {
        since_epoch_ms.div_ceil(TIMER_TICK_MS)
    }

    /// Arms `(token, generation)` to fire at `tick`.
    pub fn arm(&mut self, token: usize, generation: u64, tick: u64) {
        // A deadline in the past still lands one slot ahead of the cursor
        // so the next `expired` sweep picks it up.
        let tick = tick.max(self.cursor);
        let slot = (tick as usize) % TIMER_SLOTS;
        self.slots[slot].push(TimerEntry {
            token,
            generation,
            tick,
        });
    }

    /// Advances the wheel to `now_tick`, returning every `(token,
    /// generation)` whose tick elapsed. Entries parked for a later wheel
    /// revolution are re-queued, not fired.
    pub fn expired(&mut self, now_tick: u64) -> Vec<(usize, u64)> {
        let mut fired = Vec::new();
        while self.cursor <= now_tick {
            let slot = (self.cursor as usize) % TIMER_SLOTS;
            let entries = std::mem::take(&mut self.slots[slot]);
            for entry in entries {
                if entry.tick <= now_tick {
                    fired.push((entry.token, entry.generation));
                } else {
                    // A later revolution: put it back for its real tick.
                    self.slots[(entry.tick as usize) % TIMER_SLOTS].push(entry);
                }
            }
            self.cursor += 1;
        }
        fired
    }
}

impl Default for TimerWheel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(parser: &mut RequestParser, buffer: &mut RecvBuffer, bytes: &[u8]) -> Vec<Parsed> {
        buffer.extend(bytes);
        let mut out = Vec::new();
        loop {
            match parser.next_request(buffer) {
                Parsed::NeedMore => break,
                other => out.push(other),
            }
        }
        out
    }

    #[test]
    fn one_request_parses_whole_or_byte_at_a_time() {
        let raw = b"POST /v1/plan HTTP/1.1\r\nhost: x\r\ncontent-length: 2\r\n\r\nhi";
        for chunk in [raw.len(), 1] {
            let mut parser = RequestParser::new(1024);
            let mut buffer = RecvBuffer::new();
            let mut requests = Vec::new();
            for piece in raw.chunks(chunk) {
                for parsed in feed(&mut parser, &mut buffer, piece) {
                    match parsed {
                        Parsed::Request(r) => requests.push(r),
                        other => panic!("unexpected {other:?}"),
                    }
                }
            }
            assert_eq!(requests.len(), 1, "chunk size {chunk}");
            assert_eq!(requests[0].method, "POST");
            assert_eq!(requests[0].path, "/v1/plan");
            assert_eq!(requests[0].body, b"hi");
            assert!(!requests[0].close_after);
        }
    }

    #[test]
    fn pipelined_requests_come_out_in_order() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\nPOST /v1/plan HTTP/1.1\r\ncontent-length: 3\r\n\r\nabcGET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n";
        let mut parser = RequestParser::new(1024);
        let mut buffer = RecvBuffer::new();
        let parsed = feed(&mut parser, &mut buffer, raw);
        let paths: Vec<_> = parsed
            .iter()
            .map(|p| match p {
                Parsed::Request(r) => r.path.clone(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(paths, ["/healthz", "/v1/plan", "/metrics"]);
        match &parsed[2] {
            Parsed::Request(r) => assert!(r.close_after),
            other => panic!("unexpected {other:?}"),
        }
        assert!(buffer.is_empty());
    }

    #[test]
    fn http10_closes_unless_keep_alive_is_asked_for() {
        let mut parser = RequestParser::new(1024);
        let mut buffer = RecvBuffer::new();
        let parsed = feed(
            &mut parser,
            &mut buffer,
            b"GET /healthz HTTP/1.0\r\n\r\nGET /healthz HTTP/1.0\r\nconnection: keep-alive\r\n\r\n",
        );
        match (&parsed[0], &parsed[1]) {
            (Parsed::Request(a), Parsed::Request(b)) => {
                assert!(a.close_after);
                assert!(!b.close_after);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn transfer_encoding_is_a_501_and_poisons_the_connection() {
        let mut parser = RequestParser::new(1024);
        let mut buffer = RecvBuffer::new();
        let parsed = feed(
            &mut parser,
            &mut buffer,
            b"POST /v1/plan HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
        );
        match &parsed[0] {
            Parsed::Reject { response, .. } => assert_eq!(response.status, 501),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parser.rejected());
        // The would-be chunked body is never misread as a next request.
        assert!(matches!(
            parser.next_request(&mut buffer),
            Parsed::NeedMore
        ));
    }

    #[test]
    fn oversized_bodies_reject_with_413_and_skip() {
        let mut parser = RequestParser::new(4);
        let mut buffer = RecvBuffer::new();
        let parsed = feed(
            &mut parser,
            &mut buffer,
            b"POST /v1/plan HTTP/1.1\r\ncontent-length: 10\r\n\r\n12345",
        );
        match &parsed[0] {
            Parsed::Reject { response, skip } => {
                assert_eq!(response.status, 413);
                assert_eq!(*skip, 10);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(!parser.skip_complete());
        buffer.extend(b"67890");
        let _ = parser.next_request(&mut buffer);
        assert!(parser.skip_complete());
    }

    #[test]
    fn head_overflow_is_a_431() {
        let mut parser = RequestParser::new(1024);
        let mut buffer = RecvBuffer::new();
        let mut raw = Vec::from(&b"GET /"[..]);
        raw.extend(std::iter::repeat(b'a').take(MAX_HEAD_BYTES + 8));
        let parsed = feed(&mut parser, &mut buffer, &raw);
        match &parsed[0] {
            Parsed::Reject { response, .. } => assert_eq!(response.status, 431),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn framing_hygiene_matches_the_legacy_validators() {
        for (head, status, needle) in [
            (
                &b"POST /p HTTP/1.1\r\ncontent-length: 2\r\ncontent-length: 3\r\n\r\n"[..],
                400,
                "conflicting content-length",
            ),
            (
                &b"POST /p HTTP/1.1\r\ncontent-length: +2\r\n\r\n"[..],
                400,
                "invalid content-length",
            ),
            (&b"POST /p HTTP/1.1\r\nnocolon\r\n\r\n"[..], 400, "malformed header"),
            (&b"GET \xff\xfe HTTP/1.1\r\n\r\n"[..], 400, "UTF-8"),
            (&b"GET /p HTTP/1.1 extra\r\n\r\n"[..], 400, "request line"),
        ] {
            let mut parser = RequestParser::new(1024);
            let mut buffer = RecvBuffer::new();
            let parsed = feed(&mut parser, &mut buffer, head);
            match &parsed[0] {
                Parsed::Reject { response, .. } => {
                    assert_eq!(response.status, status, "head {head:?}");
                    let text = std::str::from_utf8(&response.body).unwrap();
                    assert!(text.contains(needle), "{text} missing {needle}");
                }
                other => panic!("unexpected {other:?} for {head:?}"),
            }
        }
    }

    #[test]
    fn identical_duplicate_content_length_is_tolerated() {
        let mut parser = RequestParser::new(16);
        let mut buffer = RecvBuffer::new();
        let parsed = feed(
            &mut parser,
            &mut buffer,
            b"POST /p HTTP/1.1\r\ncontent-length: 2\r\ncontent-length: 2\r\n\r\nok",
        );
        assert!(matches!(&parsed[0], Parsed::Request(r) if r.body == b"ok"));
    }

    #[test]
    fn write_queue_tracks_watermarks_and_partial_fronts() {
        let mut queue = WriteQueue::new();
        assert!(queue.is_empty());
        queue.push(vec![1u8; WRITE_HIGH_WATERMARK + 1]);
        assert!(queue.over_high_watermark());
        assert!(!queue.below_low_watermark());

        // A sink that accepts a fixed number of bytes then blocks.
        struct Throttle(usize);
        impl std::io::Write for Throttle {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.0 == 0 {
                    return Err(std::io::ErrorKind::WouldBlock.into());
                }
                let n = buf.len().min(self.0);
                self.0 -= n;
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let mut sink = Throttle(WRITE_HIGH_WATERMARK - WRITE_LOW_WATERMARK + 1);
        assert_eq!(queue.flush_into(&mut sink).unwrap(), FlushProgress::Partial);
        assert!(!queue.over_high_watermark());
        assert_eq!(queue.queued_bytes(), WRITE_LOW_WATERMARK);
        assert!(queue.below_low_watermark());
        let mut sink = Throttle(usize::MAX);
        assert_eq!(queue.flush_into(&mut sink).unwrap(), FlushProgress::Drained);
        assert!(queue.is_empty());
        let mut blocked = Throttle(0);
        queue.push(vec![7u8; 8]);
        assert_eq!(queue.flush_into(&mut blocked).unwrap(), FlushProgress::Blocked);
    }

    #[test]
    fn vectored_flush_drains_mixed_owned_and_shared_segments() {
        // A sink that records bytes and accepts a bounded amount per call,
        // so partial progress must split mid-segment.
        struct Recorder {
            out: Vec<u8>,
            per_call: usize,
        }
        impl std::io::Write for Recorder {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                let n = buf.len().min(self.per_call);
                self.out.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn write_vectored(&mut self, bufs: &[std::io::IoSlice<'_>]) -> std::io::Result<usize> {
                let mut budget = self.per_call;
                let mut written = 0;
                for buf in bufs {
                    if budget == 0 {
                        break;
                    }
                    let n = buf.len().min(budget);
                    self.out.extend_from_slice(&buf[..n]);
                    budget -= n;
                    written += n;
                }
                if written == 0 && !bufs.iter().all(|b| b.is_empty()) {
                    return Err(std::io::ErrorKind::WouldBlock.into());
                }
                Ok(written)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let shared = std::sync::Arc::new(b"shared-body".to_vec());
        let mut expected = Vec::new();
        let mut queue = WriteQueue::new();
        for i in 0..MAX_IOV_SEGMENTS + 5 {
            let head = format!("head-{i}:").into_bytes();
            expected.extend_from_slice(&head);
            expected.extend_from_slice(&shared[..]);
            queue.push(head);
            queue.push_shared(std::sync::Arc::clone(&shared));
        }
        let mut sink = Recorder {
            out: Vec::new(),
            per_call: 7,
        };
        while queue.flush_into_vectored(&mut sink).unwrap() != FlushProgress::Drained {}
        assert_eq!(sink.out, expected);
        assert!(queue.is_empty());
        assert_eq!(queue.queued_bytes(), 0);
    }

    #[test]
    fn timer_wheel_fires_on_time_and_cascades_far_deadlines() {
        let mut wheel = TimerWheel::new();
        wheel.arm(1, 0, 3);
        wheel.arm(2, 5, 4);
        // A deadline more than one revolution out shares slot 3's bucket.
        wheel.arm(3, 0, 3 + TIMER_SLOTS as u64);
        assert!(wheel.expired(2).is_empty());
        let fired = wheel.expired(4);
        assert_eq!(fired, vec![(1, 0), (2, 5)]);
        // The far entry only fires a full revolution later.
        assert!(wheel.expired(5).is_empty());
        let fired = wheel.expired(3 + TIMER_SLOTS as u64);
        assert_eq!(fired, vec![(3, 0)]);
    }

    #[test]
    fn recv_buffer_compacts_without_losing_bytes() {
        let mut buffer = RecvBuffer::new();
        buffer.extend(&vec![9u8; 8192]);
        buffer.consume(8190);
        buffer.extend(b"ab");
        assert_eq!(buffer.bytes(), &[9, 9, b'a', b'b']);
        assert_eq!(buffer.len(), 4);
    }
}
