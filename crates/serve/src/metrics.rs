//! Request metrics with Prometheus text-format rendering.
//!
//! Three instrument families, all lock-free on the hot path except the
//! per-(route, status) counter map (a short-lived mutex over a small
//! `BTreeMap`):
//!
//! * `arrayflex_serve_requests_total{route,status}` — request counter;
//! * `arrayflex_serve_request_duration_us` — cumulative latency histogram
//!   with fixed microsecond buckets;
//! * `arrayflex_serve_plan_cache_{hits,misses,evictions,expirations}_total`,
//!   `arrayflex_serve_plan_cache_{entries,bytes,hit_rate}` and the
//!   per-shard `arrayflex_serve_plan_cache_shard_*_total{shard}` family —
//!   read from the plan cache at scrape time.

use arrayflex::{CacheShardStats, PlanCache};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Upper bounds (in microseconds) of the latency histogram buckets; a
/// `+Inf` bucket is implicit.
pub const LATENCY_BUCKETS_US: [u64; 10] =
    [50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 50_000, 250_000];

/// Thread-safe request metrics.
#[derive(Debug, Default)]
pub struct Metrics {
    requests: Mutex<BTreeMap<(String, u16), u64>>,
    latency_buckets: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    latency_sum_us: AtomicU64,
    latency_count: AtomicU64,
    open_connections: AtomicU64,
    accept_queue: AtomicU64,
    idle_closed: AtomicU64,
    /// Singleflight-coalesced requests per coalescable route:
    /// `[/v1/plan, /v1/sweep, /v1/simulate]`.
    coalesced: [AtomicU64; COALESCE_ROUTES.len()],
    sim_batches: AtomicU64,
    sim_batched_requests: AtomicU64,
    rendered_hits: AtomicU64,
    sheds: Mutex<BTreeMap<String, u64>>,
    panics: AtomicU64,
    deadline_expired: AtomicU64,
    stale_served: AtomicU64,
    accept_backoffs: AtomicU64,
    snapshot_rejected: AtomicU64,
    cancelled: Mutex<BTreeMap<String, u64>>,
    tenant_sheds: Mutex<BTreeMap<String, u64>>,
    tenant_jobs: Mutex<BTreeMap<String, u64>>,
    jobs_submitted: AtomicU64,
    jobs_resumed: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_cancelled: AtomicU64,
    jobs_failed: AtomicU64,
}

/// Locks a metrics mutex, recovering the data if a panicking thread
/// poisoned it: counters have no cross-key invariants, so the inner map
/// is always safe to keep using and losing all metrics over one caught
/// panic would be worse.
fn lock_counters<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// The routes whose identical concurrent requests the admission layer may
/// coalesce, in label order.
pub const COALESCE_ROUTES: [&str; 3] = ["/v1/plan", "/v1/sweep", "/v1/simulate"];

impl Metrics {
    /// Creates empty metrics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one served request.
    pub fn observe(&self, route: &str, status: u16, latency: Duration) {
        {
            let mut requests = lock_counters(&self.requests);
            *requests.entry((route.to_owned(), status)).or_insert(0) += 1;
        }
        let micros = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let bucket = LATENCY_BUCKETS_US
            .iter()
            .position(|&bound| micros <= bound)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.latency_buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(micros, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of requests recorded for one (route, status) pair.
    #[must_use]
    pub fn requests(&self, route: &str, status: u16) -> u64 {
        lock_counters(&self.requests)
            .get(&(route.to_owned(), status))
            .copied()
            .unwrap_or(0)
    }

    /// Total number of requests recorded across all routes and statuses.
    #[must_use]
    pub fn total_requests(&self) -> u64 {
        self.latency_count.load(Ordering::Relaxed)
    }

    /// Records a connection opened by the event loop.
    pub fn note_connection_opened(&self) {
        self.open_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection closed by the event loop.
    pub fn note_connection_closed(&self) {
        self.open_connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// Connections currently open on the event loops.
    #[must_use]
    pub fn open_connections(&self) -> u64 {
        self.open_connections.load(Ordering::Relaxed)
    }

    /// Records a connection queued from the acceptor toward an event loop.
    pub fn note_accept_enqueued(&self) {
        self.accept_queue.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a queued connection picked up by its event loop.
    pub fn note_accept_dequeued(&self) {
        self.accept_queue.fetch_sub(1, Ordering::Relaxed);
    }

    /// Accepted connections still waiting for their event loop.
    #[must_use]
    pub fn accept_queue_depth(&self) -> u64 {
        self.accept_queue.load(Ordering::Relaxed)
    }

    /// Records a keep-alive connection closed by the idle deadline.
    pub fn note_idle_closed(&self) {
        self.idle_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Keep-alive connections closed by the idle deadline so far.
    #[must_use]
    pub fn idle_closed(&self) -> u64 {
        self.idle_closed.load(Ordering::Relaxed)
    }

    /// Records one request that was coalesced onto another in-flight
    /// identical request (the leader itself is not counted).
    pub fn note_coalesced(&self, route: &str) {
        if let Some(index) = COALESCE_ROUTES.iter().position(|&r| r == route) {
            self.coalesced[index].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Coalesced requests recorded for one route label.
    #[must_use]
    pub fn coalesced(&self, route: &str) -> u64 {
        COALESCE_ROUTES
            .iter()
            .position(|&r| r == route)
            .map_or(0, |index| self.coalesced[index].load(Ordering::Relaxed))
    }

    /// Records one `/v1/plan` request answered from the rendered-response
    /// memo (no planning, no key canonicalization, no serialization).
    pub fn note_rendered_hit(&self) {
        self.rendered_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests answered from the rendered-response memo so far.
    #[must_use]
    pub fn rendered_hits(&self) -> u64 {
        self.rendered_hits.load(Ordering::Relaxed)
    }

    /// Records one gather-window simulate batch of `size` requests.
    pub fn note_sim_batch(&self, size: u64) {
        self.sim_batches.fetch_add(1, Ordering::Relaxed);
        self.sim_batched_requests.fetch_add(size, Ordering::Relaxed);
    }

    /// `(batches, batched_requests)` executed by the gather window.
    #[must_use]
    pub fn sim_batches(&self) -> (u64, u64) {
        (
            self.sim_batches.load(Ordering::Relaxed),
            self.sim_batched_requests.load(Ordering::Relaxed),
        )
    }

    /// Records one request shed by admission control (answered 503
    /// without running its computation), by route.
    pub fn note_shed(&self, route: &str) {
        *lock_counters(&self.sheds).entry(route.to_owned()).or_insert(0) += 1;
    }

    /// Requests shed for one route label.
    #[must_use]
    pub fn sheds(&self, route: &str) -> u64 {
        lock_counters(&self.sheds).get(route).copied().unwrap_or(0)
    }

    /// Requests shed across all routes.
    #[must_use]
    pub fn total_sheds(&self) -> u64 {
        lock_counters(&self.sheds).values().sum()
    }

    /// Records one handler panic caught and converted into a structured
    /// 500 (the worker survived).
    pub fn note_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Handler panics caught so far.
    #[must_use]
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Records one request answered 503 because its deadline expired
    /// before a worker picked it up.
    pub fn note_deadline_expired(&self) {
        self.deadline_expired.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests expired by the per-request deadline so far.
    #[must_use]
    pub fn deadline_expired(&self) -> u64 {
        self.deadline_expired.load(Ordering::Relaxed)
    }

    /// Records one `/v1/plan` request served a stale rendered-memo body
    /// under shed pressure (flagged to the client via response header).
    pub fn note_stale_served(&self) {
        self.stale_served.fetch_add(1, Ordering::Relaxed);
    }

    /// Stale rendered bodies served under shed pressure so far.
    #[must_use]
    pub fn stale_served(&self) -> u64 {
        self.stale_served.load(Ordering::Relaxed)
    }

    /// Records the accept loop backing off after a persistent accept
    /// error (EMFILE-class fd exhaustion).
    pub fn note_accept_backoff(&self) {
        self.accept_backoffs.fetch_add(1, Ordering::Relaxed);
    }

    /// Accept-loop backoffs so far.
    #[must_use]
    pub fn accept_backoffs(&self) -> u64 {
        self.accept_backoffs.load(Ordering::Relaxed)
    }

    /// Records one plan-cache snapshot rejected at warm start (corrupt or
    /// unreadable; the server came up cold instead).
    pub fn note_snapshot_rejected(&self) {
        self.snapshot_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshots rejected at warm start so far.
    #[must_use]
    pub fn snapshot_rejected(&self) -> u64 {
        self.snapshot_rejected.load(Ordering::Relaxed)
    }

    /// Records one computation stopped through its cancel token, by cause
    /// (`deadline`, `disconnect`, `job`, `shutdown`).
    pub fn note_cancelled(&self, cause: &str) {
        *lock_counters(&self.cancelled).entry(cause.to_owned()).or_insert(0) += 1;
    }

    /// Cancellations recorded for one cause label.
    #[must_use]
    pub fn cancelled(&self, cause: &str) -> u64 {
        lock_counters(&self.cancelled).get(cause).copied().unwrap_or(0)
    }

    /// Cancellations recorded across all causes.
    #[must_use]
    pub fn total_cancelled(&self) -> u64 {
        lock_counters(&self.cancelled).values().sum()
    }

    /// Records one request shed by the per-tenant token bucket (429).
    pub fn note_tenant_shed(&self, tenant: &str) {
        *lock_counters(&self.tenant_sheds).entry(tenant.to_owned()).or_insert(0) += 1;
    }

    /// Requests shed by quota for one tenant label.
    #[must_use]
    pub fn tenant_sheds(&self, tenant: &str) -> u64 {
        lock_counters(&self.tenant_sheds).get(tenant).copied().unwrap_or(0)
    }

    /// Records a job entering the running set for `tenant` (gauge up).
    pub fn note_job_started(&self, tenant: &str) {
        *lock_counters(&self.tenant_jobs).entry(tenant.to_owned()).or_insert(0) += 1;
    }

    /// Records a job leaving the running set for `tenant` (gauge down).
    pub fn note_job_finished(&self, tenant: &str) {
        let mut jobs = lock_counters(&self.tenant_jobs);
        if let Some(count) = jobs.get_mut(tenant) {
            *count = count.saturating_sub(1);
        }
    }

    /// Jobs currently running or resumable for one tenant label.
    #[must_use]
    pub fn tenant_active_jobs(&self, tenant: &str) -> u64 {
        lock_counters(&self.tenant_jobs).get(tenant).copied().unwrap_or(0)
    }

    /// Records one job accepted through `POST /v1/jobs`.
    pub fn note_job_submitted(&self) {
        self.jobs_submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Jobs accepted so far.
    #[must_use]
    pub fn jobs_submitted(&self) -> u64 {
        self.jobs_submitted.load(Ordering::Relaxed)
    }

    /// Records one incomplete job resumed from its checkpoint at warm
    /// start.
    pub fn note_job_resumed(&self) {
        self.jobs_resumed.fetch_add(1, Ordering::Relaxed);
    }

    /// Jobs resumed from checkpoints so far.
    #[must_use]
    pub fn jobs_resumed(&self) -> u64 {
        self.jobs_resumed.load(Ordering::Relaxed)
    }

    /// Records one job that ran to completion.
    pub fn note_job_completed(&self) {
        self.jobs_completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Jobs completed so far.
    #[must_use]
    pub fn jobs_completed(&self) -> u64 {
        self.jobs_completed.load(Ordering::Relaxed)
    }

    /// Records one job cancelled through `DELETE /v1/jobs/{id}`.
    pub fn note_job_cancelled(&self) {
        self.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Jobs cancelled so far.
    #[must_use]
    pub fn jobs_cancelled(&self) -> u64 {
        self.jobs_cancelled.load(Ordering::Relaxed)
    }

    /// Records one job that stopped on an execution error.
    pub fn note_job_failed(&self) {
        self.jobs_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Jobs failed so far.
    #[must_use]
    pub fn jobs_failed(&self) -> u64 {
        self.jobs_failed.load(Ordering::Relaxed)
    }

    /// Renders every metric in the Prometheus text exposition format.
    #[must_use]
    pub fn render_prometheus(&self, cache: &PlanCache) -> String {
        let mut out = String::new();
        out.push_str("# HELP arrayflex_serve_requests_total Requests served, by route and status.\n");
        out.push_str("# TYPE arrayflex_serve_requests_total counter\n");
        for ((route, status), count) in lock_counters(&self.requests).iter() {
            let _ = writeln!(
                out,
                "arrayflex_serve_requests_total{{route=\"{route}\",status=\"{status}\"}} {count}"
            );
        }

        out.push_str("# HELP arrayflex_serve_request_duration_us Request latency in microseconds.\n");
        out.push_str("# TYPE arrayflex_serve_request_duration_us histogram\n");
        let mut cumulative = 0u64;
        for (index, &bound) in LATENCY_BUCKETS_US.iter().enumerate() {
            cumulative += self.latency_buckets[index].load(Ordering::Relaxed);
            let _ = writeln!(
                out,
                "arrayflex_serve_request_duration_us_bucket{{le=\"{bound}\"}} {cumulative}"
            );
        }
        cumulative += self.latency_buckets[LATENCY_BUCKETS_US.len()].load(Ordering::Relaxed);
        let _ = writeln!(
            out,
            "arrayflex_serve_request_duration_us_bucket{{le=\"+Inf\"}} {cumulative}"
        );
        let _ = writeln!(
            out,
            "arrayflex_serve_request_duration_us_sum {}",
            self.latency_sum_us.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "arrayflex_serve_request_duration_us_count {}",
            self.latency_count.load(Ordering::Relaxed)
        );

        out.push_str("# HELP arrayflex_serve_plan_cache_hits_total Plan cache hits.\n");
        out.push_str("# TYPE arrayflex_serve_plan_cache_hits_total counter\n");
        let _ = writeln!(out, "arrayflex_serve_plan_cache_hits_total {}", cache.hits());
        out.push_str("# HELP arrayflex_serve_plan_cache_misses_total Plan cache misses.\n");
        out.push_str("# TYPE arrayflex_serve_plan_cache_misses_total counter\n");
        let _ = writeln!(out, "arrayflex_serve_plan_cache_misses_total {}", cache.misses());
        out.push_str("# HELP arrayflex_serve_plan_cache_evictions_total Plans evicted by capacity or byte-budget pressure.\n");
        out.push_str("# TYPE arrayflex_serve_plan_cache_evictions_total counter\n");
        let _ = writeln!(
            out,
            "arrayflex_serve_plan_cache_evictions_total {}",
            cache.evictions()
        );
        out.push_str("# HELP arrayflex_serve_plan_cache_expirations_total Plans expired by the write-TTL.\n");
        out.push_str("# TYPE arrayflex_serve_plan_cache_expirations_total counter\n");
        let _ = writeln!(
            out,
            "arrayflex_serve_plan_cache_expirations_total {}",
            cache.expirations()
        );
        out.push_str("# HELP arrayflex_serve_plan_cache_entries Plans currently resident in the cache.\n");
        out.push_str("# TYPE arrayflex_serve_plan_cache_entries gauge\n");
        let _ = writeln!(out, "arrayflex_serve_plan_cache_entries {}", cache.len());
        out.push_str("# HELP arrayflex_serve_plan_cache_bytes Estimated bytes held by resident plans.\n");
        out.push_str("# TYPE arrayflex_serve_plan_cache_bytes gauge\n");
        let _ = writeln!(out, "arrayflex_serve_plan_cache_bytes {}", cache.bytes());
        out.push_str("# HELP arrayflex_serve_plan_cache_hit_rate Fraction of plan lookups served from the cache.\n");
        out.push_str("# TYPE arrayflex_serve_plan_cache_hit_rate gauge\n");
        let _ = writeln!(out, "arrayflex_serve_plan_cache_hit_rate {}", cache.hit_rate());

        out.push_str("# HELP arrayflex_serve_open_connections Connections currently open on the event loops.\n");
        out.push_str("# TYPE arrayflex_serve_open_connections gauge\n");
        let _ = writeln!(
            out,
            "arrayflex_serve_open_connections {}",
            self.open_connections.load(Ordering::Relaxed)
        );
        out.push_str("# HELP arrayflex_serve_accept_queue_depth Accepted connections awaiting their event loop.\n");
        out.push_str("# TYPE arrayflex_serve_accept_queue_depth gauge\n");
        let _ = writeln!(
            out,
            "arrayflex_serve_accept_queue_depth {}",
            self.accept_queue.load(Ordering::Relaxed)
        );
        out.push_str("# HELP arrayflex_serve_idle_closed_total Keep-alive connections closed by the idle deadline.\n");
        out.push_str("# TYPE arrayflex_serve_idle_closed_total counter\n");
        let _ = writeln!(
            out,
            "arrayflex_serve_idle_closed_total {}",
            self.idle_closed.load(Ordering::Relaxed)
        );
        out.push_str("# HELP arrayflex_serve_coalesced_requests_total Requests coalesced onto an identical in-flight computation, by route.\n");
        out.push_str("# TYPE arrayflex_serve_coalesced_requests_total counter\n");
        for (index, route) in COALESCE_ROUTES.iter().enumerate() {
            let _ = writeln!(
                out,
                "arrayflex_serve_coalesced_requests_total{{route=\"{route}\"}} {}",
                self.coalesced[index].load(Ordering::Relaxed)
            );
        }
        out.push_str("# HELP arrayflex_serve_rendered_hits_total Plan requests answered from the rendered-response memo.\n");
        out.push_str("# TYPE arrayflex_serve_rendered_hits_total counter\n");
        let _ = writeln!(
            out,
            "arrayflex_serve_rendered_hits_total {}",
            self.rendered_hits.load(Ordering::Relaxed)
        );
        out.push_str("# HELP arrayflex_serve_sim_batches_total Gather-window simulate batches executed.\n");
        out.push_str("# TYPE arrayflex_serve_sim_batches_total counter\n");
        let _ = writeln!(
            out,
            "arrayflex_serve_sim_batches_total {}",
            self.sim_batches.load(Ordering::Relaxed)
        );
        out.push_str("# HELP arrayflex_serve_sim_batched_requests_total Simulate requests served through gather-window batches.\n");
        out.push_str("# TYPE arrayflex_serve_sim_batched_requests_total counter\n");
        let _ = writeln!(
            out,
            "arrayflex_serve_sim_batched_requests_total {}",
            self.sim_batched_requests.load(Ordering::Relaxed)
        );
        out.push_str("# HELP arrayflex_serve_shed_total Requests shed by admission control (503 without computation), by route.\n");
        out.push_str("# TYPE arrayflex_serve_shed_total counter\n");
        for (route, count) in lock_counters(&self.sheds).iter() {
            let _ = writeln!(out, "arrayflex_serve_shed_total{{route=\"{route}\"}} {count}");
        }
        out.push_str("# HELP arrayflex_serve_panics_total Handler panics caught and answered with a structured 500.\n");
        out.push_str("# TYPE arrayflex_serve_panics_total counter\n");
        let _ = writeln!(
            out,
            "arrayflex_serve_panics_total {}",
            self.panics.load(Ordering::Relaxed)
        );
        out.push_str("# HELP arrayflex_serve_deadline_expired_total Requests answered 503 because their deadline expired in the queue.\n");
        out.push_str("# TYPE arrayflex_serve_deadline_expired_total counter\n");
        let _ = writeln!(
            out,
            "arrayflex_serve_deadline_expired_total {}",
            self.deadline_expired.load(Ordering::Relaxed)
        );
        out.push_str("# HELP arrayflex_serve_stale_served_total Plan requests served a stale rendered body under shed pressure.\n");
        out.push_str("# TYPE arrayflex_serve_stale_served_total counter\n");
        let _ = writeln!(
            out,
            "arrayflex_serve_stale_served_total {}",
            self.stale_served.load(Ordering::Relaxed)
        );
        out.push_str("# HELP arrayflex_serve_accept_backoff_total Accept-loop backoffs after EMFILE-class accept errors.\n");
        out.push_str("# TYPE arrayflex_serve_accept_backoff_total counter\n");
        let _ = writeln!(
            out,
            "arrayflex_serve_accept_backoff_total {}",
            self.accept_backoffs.load(Ordering::Relaxed)
        );
        out.push_str("# HELP arrayflex_serve_snapshot_rejected_total Plan-cache snapshots rejected at warm start (server came up cold).\n");
        out.push_str("# TYPE arrayflex_serve_snapshot_rejected_total counter\n");
        let _ = writeln!(
            out,
            "arrayflex_serve_snapshot_rejected_total {}",
            self.snapshot_rejected.load(Ordering::Relaxed)
        );
        out.push_str("# HELP arrayflex_serve_cancelled_total Computations stopped through their cancel token, by cause.\n");
        out.push_str("# TYPE arrayflex_serve_cancelled_total counter\n");
        for (cause, count) in lock_counters(&self.cancelled).iter() {
            let _ = writeln!(out, "arrayflex_serve_cancelled_total{{cause=\"{cause}\"}} {count}");
        }
        out.push_str("# HELP arrayflex_serve_tenant_shed_total Requests shed by the per-tenant token bucket (429), by tenant.\n");
        out.push_str("# TYPE arrayflex_serve_tenant_shed_total counter\n");
        for (tenant, count) in lock_counters(&self.tenant_sheds).iter() {
            let _ = writeln!(
                out,
                "arrayflex_serve_tenant_shed_total{{tenant=\"{tenant}\"}} {count}"
            );
        }
        out.push_str("# HELP arrayflex_serve_tenant_active_jobs Jobs currently running or resumable, by tenant.\n");
        out.push_str("# TYPE arrayflex_serve_tenant_active_jobs gauge\n");
        for (tenant, count) in lock_counters(&self.tenant_jobs).iter() {
            let _ = writeln!(
                out,
                "arrayflex_serve_tenant_active_jobs{{tenant=\"{tenant}\"}} {count}"
            );
        }
        for (name, help, value) in [
            (
                "jobs_submitted_total",
                "Jobs accepted through POST /v1/jobs.",
                self.jobs_submitted.load(Ordering::Relaxed),
            ),
            (
                "jobs_resumed_total",
                "Incomplete jobs resumed from checkpoints at warm start.",
                self.jobs_resumed.load(Ordering::Relaxed),
            ),
            (
                "jobs_completed_total",
                "Jobs that ran to completion.",
                self.jobs_completed.load(Ordering::Relaxed),
            ),
            (
                "jobs_cancelled_total",
                "Jobs cancelled through DELETE /v1/jobs.",
                self.jobs_cancelled.load(Ordering::Relaxed),
            ),
            (
                "jobs_failed_total",
                "Jobs that stopped on an execution error.",
                self.jobs_failed.load(Ordering::Relaxed),
            ),
        ] {
            let _ = writeln!(out, "# HELP arrayflex_serve_{name} {help}");
            let _ = writeln!(out, "# TYPE arrayflex_serve_{name} counter");
            let _ = writeln!(out, "arrayflex_serve_{name} {value}");
        }

        for (metric, help, pick) in SHARD_COUNTERS {
            let _ = writeln!(out, "# HELP arrayflex_serve_plan_cache_shard_{metric} {help}");
            let _ = writeln!(out, "# TYPE arrayflex_serve_plan_cache_shard_{metric} counter");
            for (shard, stats) in cache.shard_stats().iter().enumerate() {
                let _ = writeln!(
                    out,
                    "arrayflex_serve_plan_cache_shard_{metric}{{shard=\"{shard}\"}} {}",
                    pick(stats)
                );
            }
        }
        out
    }
}

/// The per-shard plan-cache counter families `/metrics` exposes: metric
/// suffix, HELP text, and the [`CacheShardStats`] field it reads.
type ShardCounter = (&'static str, &'static str, fn(&CacheShardStats) -> u64);
const SHARD_COUNTERS: [ShardCounter; 4] = [
    ("hits_total", "Plan cache hits, by shard.", |s| s.hits),
    ("misses_total", "Plan cache misses, by shard.", |s| s.misses),
    ("evictions_total", "Plan cache evictions, by shard.", |s| {
        s.evictions
    }),
    ("expirations_total", "Plan cache TTL expirations, by shard.", |s| {
        s.expirations
    }),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_histogram_accumulate() {
        let metrics = Metrics::new();
        metrics.observe("/v1/plan", 200, Duration::from_micros(80));
        metrics.observe("/v1/plan", 200, Duration::from_micros(300));
        metrics.observe("/v1/plan", 400, Duration::from_micros(10));
        metrics.observe("/healthz", 200, Duration::from_secs(1));
        assert_eq!(metrics.requests("/v1/plan", 200), 2);
        assert_eq!(metrics.requests("/v1/plan", 400), 1);
        assert_eq!(metrics.requests("/healthz", 200), 1);
        assert_eq!(metrics.requests("/missing", 200), 0);
        assert_eq!(metrics.total_requests(), 4);
    }

    #[test]
    fn serving_gauges_and_coalesce_counters_accumulate() {
        let metrics = Metrics::new();
        metrics.note_connection_opened();
        metrics.note_connection_opened();
        metrics.note_connection_closed();
        assert_eq!(metrics.open_connections(), 1);
        metrics.note_accept_enqueued();
        assert_eq!(metrics.accept_queue_depth(), 1);
        metrics.note_accept_dequeued();
        assert_eq!(metrics.accept_queue_depth(), 0);
        metrics.note_idle_closed();
        assert_eq!(metrics.idle_closed(), 1);
        metrics.note_coalesced("/v1/plan");
        metrics.note_coalesced("/v1/plan");
        metrics.note_coalesced("/v1/simulate");
        metrics.note_coalesced("/healthz"); // not coalescable: ignored
        assert_eq!(metrics.coalesced("/v1/plan"), 2);
        assert_eq!(metrics.coalesced("/v1/simulate"), 1);
        assert_eq!(metrics.coalesced("/healthz"), 0);
        metrics.note_sim_batch(3);
        metrics.note_sim_batch(1);
        assert_eq!(metrics.sim_batches(), (2, 4));
        metrics.note_shed("/v1/plan");
        metrics.note_shed("/v1/plan");
        metrics.note_shed("/v1/simulate");
        assert_eq!(metrics.sheds("/v1/plan"), 2);
        assert_eq!(metrics.sheds("/v1/simulate"), 1);
        assert_eq!(metrics.sheds("/healthz"), 0);
        assert_eq!(metrics.total_sheds(), 3);
        metrics.note_panic();
        assert_eq!(metrics.panics(), 1);
        metrics.note_deadline_expired();
        assert_eq!(metrics.deadline_expired(), 1);
        metrics.note_stale_served();
        assert_eq!(metrics.stale_served(), 1);
        metrics.note_accept_backoff();
        assert_eq!(metrics.accept_backoffs(), 1);
        metrics.note_snapshot_rejected();
        assert_eq!(metrics.snapshot_rejected(), 1);
        metrics.note_cancelled("deadline");
        metrics.note_cancelled("disconnect");
        metrics.note_cancelled("disconnect");
        assert_eq!(metrics.cancelled("deadline"), 1);
        assert_eq!(metrics.cancelled("disconnect"), 2);
        assert_eq!(metrics.cancelled("job"), 0);
        assert_eq!(metrics.total_cancelled(), 3);
        metrics.note_tenant_shed("acme");
        metrics.note_tenant_shed("acme");
        assert_eq!(metrics.tenant_sheds("acme"), 2);
        assert_eq!(metrics.tenant_sheds("other"), 0);
        metrics.note_job_started("acme");
        metrics.note_job_started("acme");
        metrics.note_job_finished("acme");
        metrics.note_job_finished("ghost"); // never started: stays at zero
        assert_eq!(metrics.tenant_active_jobs("acme"), 1);
        assert_eq!(metrics.tenant_active_jobs("ghost"), 0);
        metrics.note_job_submitted();
        metrics.note_job_resumed();
        metrics.note_job_completed();
        metrics.note_job_cancelled();
        metrics.note_job_failed();
        assert_eq!(metrics.jobs_submitted(), 1);
        assert_eq!(metrics.jobs_resumed(), 1);
        assert_eq!(metrics.jobs_completed(), 1);
        assert_eq!(metrics.jobs_cancelled(), 1);
        assert_eq!(metrics.jobs_failed(), 1);
        let cache = PlanCache::new(4);
        let text = metrics.render_prometheus(&cache);
        assert!(text.contains("arrayflex_serve_open_connections 1"));
        assert!(text.contains("arrayflex_serve_coalesced_requests_total{route=\"/v1/plan\"} 2"));
        assert!(text.contains("arrayflex_serve_sim_batched_requests_total 4"));
        assert!(text.contains("arrayflex_serve_shed_total{route=\"/v1/plan\"} 2"));
        assert!(text.contains("arrayflex_serve_shed_total{route=\"/v1/simulate\"} 1"));
        assert!(text.contains("arrayflex_serve_panics_total 1"));
        assert!(text.contains("arrayflex_serve_deadline_expired_total 1"));
        assert!(text.contains("arrayflex_serve_stale_served_total 1"));
        assert!(text.contains("arrayflex_serve_accept_backoff_total 1"));
        assert!(text.contains("arrayflex_serve_snapshot_rejected_total 1"));
        assert!(text.contains("arrayflex_serve_cancelled_total{cause=\"deadline\"} 1"));
        assert!(text.contains("arrayflex_serve_cancelled_total{cause=\"disconnect\"} 2"));
        assert!(text.contains("arrayflex_serve_tenant_shed_total{tenant=\"acme\"} 2"));
        assert!(text.contains("arrayflex_serve_tenant_active_jobs{tenant=\"acme\"} 1"));
        assert!(text.contains("arrayflex_serve_jobs_submitted_total 1"));
        assert!(text.contains("arrayflex_serve_jobs_resumed_total 1"));
        assert!(text.contains("arrayflex_serve_jobs_completed_total 1"));
        assert!(text.contains("arrayflex_serve_jobs_cancelled_total 1"));
        assert!(text.contains("arrayflex_serve_jobs_failed_total 1"));
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let metrics = Metrics::new();
        metrics.observe("/v1/plan", 200, Duration::from_micros(120));
        let cache = PlanCache::new(4);
        let text = metrics.render_prometheus(&cache);
        assert!(text.contains(
            "arrayflex_serve_requests_total{route=\"/v1/plan\",status=\"200\"} 1"
        ));
        // Histogram buckets are cumulative and end with +Inf == count.
        assert!(text.contains("arrayflex_serve_request_duration_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("arrayflex_serve_request_duration_us_count 1"));
        assert!(text.contains("arrayflex_serve_plan_cache_hits_total 0"));
        assert!(text.contains("arrayflex_serve_plan_cache_hit_rate 0"));
        assert!(text.contains("arrayflex_serve_plan_cache_evictions_total 0"));
        assert!(text.contains("arrayflex_serve_plan_cache_expirations_total 0"));
        assert!(text.contains("arrayflex_serve_plan_cache_entries 0"));
        assert!(text.contains("arrayflex_serve_plan_cache_bytes 0"));
        // One labelled sample per shard for every per-shard family.
        let shards = cache.shard_stats().len();
        for family in ["hits", "misses", "evictions", "expirations"] {
            let count = text
                .lines()
                .filter(|l| l.starts_with(&format!("arrayflex_serve_plan_cache_shard_{family}_total{{")))
                .count();
            assert_eq!(count, shards, "family {family}");
        }
        assert!(text.contains("arrayflex_serve_plan_cache_shard_hits_total{shard=\"0\"} 0"));
        assert!(text.contains("arrayflex_serve_open_connections 0"));
        assert!(text.contains("arrayflex_serve_accept_queue_depth 0"));
        assert!(text.contains("arrayflex_serve_idle_closed_total 0"));
        assert!(text.contains("arrayflex_serve_sim_batches_total 0"));
        assert!(text.contains("arrayflex_serve_sim_batched_requests_total 0"));
        assert!(text.contains("arrayflex_serve_rendered_hits_total 0"));
        assert!(text.contains("arrayflex_serve_panics_total 0"));
        assert!(text.contains("arrayflex_serve_deadline_expired_total 0"));
        assert!(text.contains("arrayflex_serve_stale_served_total 0"));
        assert!(text.contains("arrayflex_serve_accept_backoff_total 0"));
        assert!(text.contains("arrayflex_serve_snapshot_rejected_total 0"));
        for route in COALESCE_ROUTES {
            assert!(text.contains(&format!(
                "arrayflex_serve_coalesced_requests_total{{route=\"{route}\"}} 0"
            )));
        }
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad value in line: {line}");
            assert!(parts.next().is_some(), "bad line: {line}");
        }
    }
}
