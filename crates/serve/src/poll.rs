//! Readiness polling behind a vendored, mio-style [`Poller`] trait.
//!
//! The build environment has no crates.io access, so — mirroring the
//! hand-rolled HTTP layer — this module implements the small slice of a
//! readiness API the event loop needs: register a descriptor under a
//! `usize` token with read/write interest, block until something is
//! ready, and wake the loop from another thread.
//!
//! Two implementations sit behind the trait:
//!
//! * [`EpollPoller`] — Linux `epoll` via raw `extern "C"` syscall
//!   wrappers (`epoll_create1` / `epoll_ctl` / `epoll_wait`), O(ready)
//!   per poll. Used by default on Linux.
//! * [`PollFallback`] — portable `poll(2)`, O(registered) per poll. Used
//!   on non-Linux targets and when `ARRAYFLEX_FORCE_POLL=1` is set (the
//!   test suite exercises both backends through the same trait).
//!
//! Both backends are **level-triggered**: a descriptor with unread bytes
//! (or writable space) is reported again on every poll until the
//! condition clears, so the event loop never needs to drain descriptors
//! to exhaustion within one event.
//!
//! This is the only module in the crate allowed to use `unsafe` (the
//! crate root is `#![deny(unsafe_code)]`); the unsafety is confined to
//! the two FFI call sites and the `#[repr(C)]` structs they exchange.
#![allow(unsafe_code)]

use std::io::{self, Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

/// What readiness to watch a descriptor for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report when the descriptor is readable.
    pub readable: bool,
    /// Report when the descriptor is writable.
    pub writable: bool,
}

impl Interest {
    /// Read interest only.
    pub const READABLE: Self = Self {
        readable: true,
        writable: false,
    };

    /// Write interest only.
    pub const WRITABLE: Self = Self {
        readable: false,
        writable: true,
    };
}

/// One readiness event returned by [`Poller::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered under.
    pub token: usize,
    /// The descriptor is readable (or hung up / errored: attempting the
    /// read is how the loop observes EOF and error conditions).
    pub readable: bool,
    /// The descriptor is writable.
    pub writable: bool,
}

/// A minimal readiness poller. One instance belongs to one event-loop
/// thread; wakeups from other threads go through a [`Waker`] registered
/// like any other readable descriptor.
pub trait Poller: Send {
    /// Starts watching `fd` under `token`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying syscall failure.
    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()>;

    /// Changes the interest set of an already registered descriptor.
    ///
    /// # Errors
    ///
    /// Propagates the underlying syscall failure.
    fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()>;

    /// Stops watching `fd`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying syscall failure.
    fn deregister(&mut self, fd: RawFd) -> io::Result<()>;

    /// Blocks until at least one registered descriptor is ready or the
    /// timeout elapses, appending events into `events` (cleared first).
    /// An interrupted wait (`EINTR`) returns successfully with no events.
    ///
    /// # Errors
    ///
    /// Propagates the underlying syscall failure.
    fn poll(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()>;
}

/// Builds the preferred poller for this platform: epoll on Linux, the
/// portable `poll(2)` fallback elsewhere or when `ARRAYFLEX_FORCE_POLL=1`
/// is set.
///
/// # Errors
///
/// Propagates the epoll-instance creation failure.
pub fn new_poller() -> io::Result<Box<dyn Poller>> {
    if std::env::var_os("ARRAYFLEX_FORCE_POLL").is_some_and(|v| v == "1") {
        return Ok(Box::new(PollFallback::new()));
    }
    #[cfg(target_os = "linux")]
    {
        Ok(Box::new(EpollPoller::new()?))
    }
    #[cfg(not(target_os = "linux"))]
    {
        Ok(Box::new(PollFallback::new()))
    }
}

// ---------------------------------------------------------------------------
// FFI surface
// ---------------------------------------------------------------------------

mod sys {
    use std::os::raw::{c_int, c_short};

    // The kernel ABI packs epoll_event on x86 so the 64-bit data field
    // follows the 32-bit event mask without padding; other architectures
    // use natural alignment.
    #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(not(any(target_arch = "x86_64", target_arch = "x86")))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLPRI: u32 = 0x002;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLL_CLOEXEC: c_int = 0x80000;

    pub const POLLIN: c_short = 0x001;
    pub const POLLPRI: c_short = 0x002;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;

    extern "C" {
        #[cfg(target_os = "linux")]
        pub fn epoll_create1(flags: c_int) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn close(fd: c_int) -> c_int;
        pub fn poll(fds: *mut PollFd, nfds: std::os::raw::c_ulong, timeout: c_int) -> c_int;
    }
}

/// Converts an optional timeout into the millisecond argument both
/// syscalls take (`-1` blocks indefinitely).
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => i32::try_from(d.as_millis()).unwrap_or(i32::MAX),
    }
}

// ---------------------------------------------------------------------------
// EpollPoller (Linux)
// ---------------------------------------------------------------------------

/// The epoll-backed poller. See the module docs for the trait contract.
#[cfg(target_os = "linux")]
pub struct EpollPoller {
    epfd: RawFd,
    buf: Vec<sys::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    /// Capacity of the per-poll event buffer; more ready descriptors than
    /// this simply surface on the next poll (epoll round-robins).
    const MAX_EVENTS: usize = 1024;

    /// Creates a new epoll instance (`EPOLL_CLOEXEC`).
    ///
    /// # Errors
    ///
    /// Propagates the `epoll_create1` failure.
    pub fn new() -> io::Result<Self> {
        // SAFETY: epoll_create1 takes a plain flag word and returns an fd
        // or -1; no pointers are exchanged.
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self {
            epfd,
            buf: vec![
                sys::EpollEvent { events: 0, data: 0 };
                Self::MAX_EVENTS
            ],
        })
    }

    fn ctl(&self, op: std::os::raw::c_int, fd: RawFd, interest: Option<Interest>) -> io::Result<()> {
        let mut event = sys::EpollEvent {
            events: interest.map_or(0, interest_to_epoll),
            data: 0,
        };
        // SAFETY: `event` outlives the call; the kernel copies it.
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut event) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
fn interest_to_epoll(interest: Interest) -> u32 {
    let mut events = sys::EPOLLRDHUP;
    if interest.readable {
        events |= sys::EPOLLIN;
    }
    if interest.writable {
        events |= sys::EPOLLOUT;
    }
    events
}

#[cfg(target_os = "linux")]
impl Poller for EpollPoller {
    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        let mut event = sys::EpollEvent {
            events: interest_to_epoll(interest),
            data: token as u64,
        };
        // SAFETY: `event` outlives the call; the kernel copies it.
        let rc = unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_ADD, fd, &mut event) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        let mut event = sys::EpollEvent {
            events: interest_to_epoll(interest),
            data: token as u64,
        };
        // SAFETY: `event` outlives the call; the kernel copies it.
        let rc = unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_MOD, fd, &mut event) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, None)
    }

    fn poll(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        // SAFETY: `buf` is MAX_EVENTS initialized EpollEvent structs; the
        // kernel writes at most `maxevents` of them.
        let n = unsafe {
            sys::epoll_wait(
                self.epfd,
                self.buf.as_mut_ptr(),
                Self::MAX_EVENTS as std::os::raw::c_int,
                timeout_ms(timeout),
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for raw in &self.buf[..n as usize] {
            // Copy out of the (possibly packed) struct before use.
            let mask = raw.events;
            let token = raw.data as usize;
            events.push(Event {
                token,
                readable: mask & (sys::EPOLLIN | sys::EPOLLPRI | sys::EPOLLHUP | sys::EPOLLRDHUP | sys::EPOLLERR)
                    != 0,
                writable: mask & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0,
            });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollPoller {
    fn drop(&mut self) {
        // SAFETY: closing the epoll fd we own; double-close is impossible
        // because Drop runs once.
        unsafe {
            sys::close(self.epfd);
        }
    }
}

// ---------------------------------------------------------------------------
// PollFallback (portable)
// ---------------------------------------------------------------------------

/// The portable `poll(2)` fallback: keeps the registration table in user
/// space and rebuilds the `pollfd` array per call — O(registered) per
/// poll, which is fine for its role as a correctness backstop and a
/// second implementation to test the trait against.
#[derive(Default)]
pub struct PollFallback {
    entries: Vec<(RawFd, usize, Interest)>,
    scratch: Vec<sys::PollFd>,
}

impl PollFallback {
    /// Creates an empty fallback poller.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn position(&self, fd: RawFd) -> Option<usize> {
        self.entries.iter().position(|&(entry_fd, _, _)| entry_fd == fd)
    }
}

impl Poller for PollFallback {
    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        if self.position(fd).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        self.entries.push((fd, token, interest));
        Ok(())
    }

    fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        let index = self
            .position(fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        self.entries[index] = (fd, token, interest);
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        let index = self
            .position(fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        self.entries.swap_remove(index);
        Ok(())
    }

    fn poll(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        self.scratch.clear();
        for &(fd, _, interest) in &self.entries {
            let mut mask: std::os::raw::c_short = 0;
            if interest.readable {
                mask |= sys::POLLIN | sys::POLLPRI;
            }
            if interest.writable {
                mask |= sys::POLLOUT;
            }
            self.scratch.push(sys::PollFd {
                fd,
                events: mask,
                revents: 0,
            });
        }
        // SAFETY: `scratch` holds entries.len() PollFd structs the kernel
        // reads and writes in place.
        let rc = unsafe {
            sys::poll(
                self.scratch.as_mut_ptr(),
                self.scratch.len() as std::os::raw::c_ulong,
                timeout_ms(timeout),
            )
        };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for (slot, &(_, token, _)) in self.scratch.iter().zip(&self.entries) {
            let revents = slot.revents;
            if revents == 0 {
                continue;
            }
            events.push(Event {
                token,
                readable: revents & (sys::POLLIN | sys::POLLPRI | sys::POLLHUP | sys::POLLERR) != 0,
                writable: revents & (sys::POLLOUT | sys::POLLHUP | sys::POLLERR) != 0,
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Waker
// ---------------------------------------------------------------------------

/// Wakes an event loop from another thread: the write half of a
/// non-blocking [`UnixStream`] pair whose read half the loop registers
/// like any socket. Cloneable and cheap — a wake is one one-byte write
/// (dropped silently when the pipe is already full, which is fine: a full
/// pipe means a wake is already pending).
#[derive(Debug, Clone)]
pub struct Waker {
    tx: Arc<UnixStream>,
}

impl Waker {
    /// Wakes the owning event loop (best effort).
    pub fn wake(&self) {
        let _ = (&*self.tx).write(&[1u8]);
    }
}

/// The read half of a waker pair; the event loop registers its fd for
/// read interest and drains it on every wake event.
#[derive(Debug)]
pub struct WakeReceiver {
    rx: UnixStream,
}

impl WakeReceiver {
    /// The fd to register with the poller.
    #[must_use]
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Drains every pending wake byte.
    pub fn drain(&mut self) {
        let mut buf = [0u8; 64];
        loop {
            match self.rx.read(&mut buf) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }
}

/// Creates a connected (waker, receiver) pair, both non-blocking.
///
/// # Errors
///
/// Propagates the socketpair / fcntl failures.
pub fn waker_pair() -> io::Result<(Waker, WakeReceiver)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx: Arc::new(tx) }, WakeReceiver { rx }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(poller: &mut dyn Poller) {
        let (waker, mut receiver) = waker_pair().expect("waker pair");
        poller
            .register(receiver.fd(), 7, Interest::READABLE)
            .expect("register");
        let mut events = Vec::new();

        // Nothing pending: the poll times out empty.
        poller
            .poll(&mut events, Some(Duration::from_millis(10)))
            .expect("poll");
        assert!(events.is_empty());

        // A wake makes the fd readable under its token.
        waker.wake();
        poller
            .poll(&mut events, Some(Duration::from_millis(1000)))
            .expect("poll");
        assert!(events.iter().any(|e| e.token == 7 && e.readable), "{events:?}");
        receiver.drain();

        // Level-triggered: an undrained byte would re-report, a drained
        // one does not.
        poller
            .poll(&mut events, Some(Duration::from_millis(10)))
            .expect("poll");
        assert!(events.is_empty(), "{events:?}");

        // Reregistration flips interest; a write-interest unix stream is
        // immediately writable.
        poller
            .reregister(receiver.fd(), 9, Interest::WRITABLE)
            .expect("reregister");
        poller
            .poll(&mut events, Some(Duration::from_millis(1000)))
            .expect("poll");
        assert!(events.iter().any(|e| e.token == 9 && e.writable), "{events:?}");

        poller.deregister(receiver.fd()).expect("deregister");
        poller
            .poll(&mut events, Some(Duration::from_millis(10)))
            .expect("poll");
        assert!(events.is_empty());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_backend_reports_readiness() {
        let mut poller = EpollPoller::new().expect("epoll instance");
        exercise(&mut poller);
    }

    #[test]
    fn poll_fallback_reports_readiness() {
        let mut poller = PollFallback::new();
        exercise(&mut poller);
    }

    #[test]
    fn fallback_rejects_duplicate_and_unknown_fds() {
        let mut poller = PollFallback::new();
        let (_, receiver) = waker_pair().expect("waker pair");
        poller
            .register(receiver.fd(), 1, Interest::READABLE)
            .expect("register");
        assert!(poller.register(receiver.fd(), 2, Interest::READABLE).is_err());
        assert!(poller.reregister(9999, 1, Interest::READABLE).is_err());
        assert!(poller.deregister(9999).is_err());
    }
}
