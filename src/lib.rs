//! Workspace umbrella crate for the ArrayFlex reproduction.
//!
//! This crate exists so that the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`) have a single dependency root.
//! It re-exports the individual crates of the workspace:
//!
//! * [`arrayflex`] — the paper's contribution: analytical models, per-layer
//!   pipeline-depth optimizer, scheduler and comparison framework;
//! * [`sa_sim`] — the cycle-accurate weight-stationary systolic-array
//!   simulator with configurable transparent pipelining;
//! * [`hw_model`] — technology, timing, power, area and energy models;
//! * [`cnn`] — the CNN layer tables (ResNet-34, MobileNetV1, ConvNeXt-T);
//! * [`gemm`] — matrices, tiling, im2col and workload generation;
//! * [`serve`] — the planner and simulator as an online HTTP service
//!   (hand-rolled HTTP/1.1 server, JSON API, plan cache, load generator).
//!
//! See the repository `README.md` for the workspace layout, crate map and
//! verification commands; `DESIGN.md` for the architecture, the model
//! equations (1)–(5) and the parallel execution engine's determinism
//! contract; and `EXPERIMENTS.md` for the per-figure reproduction recipes
//! driven by the `bench` crate's figure-regeneration binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use arrayflex;
pub use arrayflex_serve as serve;
pub use cnn;
pub use gemm;
pub use hw_model;
pub use sa_sim;

/// Convenience prelude importing the types most examples need.
pub mod prelude {
    pub use arrayflex::{
        compare_network, ArrayFlexError, ArrayFlexModel, EvaluationSweep, LayerExecution,
        NetworkComparison, NetworkPlan, ParallelExecutor, PipelineChoice, PlanCache, PlanKind,
    };
    pub use cnn::{models, DepthwiseMapping, Layer, Network};
    pub use gemm::{ConvShape, GemmDims, Matrix};
    pub use hw_model::{ClockPlan, Design, PowerModel};
    pub use sa_sim::{ArrayConfig, Simulator};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let model = ArrayFlexModel::new(16, 16).expect("valid model");
        assert_eq!(model.rows(), 16);
        let config = ArrayConfig::new(16, 16).with_collapse_depth(2);
        assert_eq!(config.row_blocks(), 8);
    }
}
