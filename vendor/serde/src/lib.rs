//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors a minimal, API-compatible subset of `serde` that is
//! sufficient for what the ArrayFlex crates actually use:
//!
//! * `#[derive(Serialize, Deserialize)]` on plain structs and enums
//!   (re-exported from the companion `serde_derive` proc-macro crate behind
//!   the `derive` feature, exactly like the real crate);
//! * `T: serde::Serialize` bounds on generic functions;
//! * JSON emission through the companion `serde_json` stand-in.
//!
//! Instead of the real serde's visitor-based data model, serialization here
//! goes through a single self-describing [`Value`] tree, which is all a
//! JSON-only workspace needs. Swapping the real serde back in requires no
//! source changes outside `vendor/` because only the derive macros and the
//! trait names are part of the contract.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the stand-in's entire data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The absence of a value (`null` in JSON).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer that does not fit `i64`'s positive range.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map of string keys to values (struct fields, maps).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an [`Value::Object`], returning `None` otherwise.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] cannot be decoded into a Rust type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Creates an error from any displayable message.
    pub fn new(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

/// Types that can be serialized into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the stand-in data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the stand-in data model.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// --- the data model itself -------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

// --- primitive impls -------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Int(v) => <$t>::try_from(*v).map_err(DeError::new),
                    Value::UInt(v) => <$t>::try_from(*v).map_err(DeError::new),
                    other => Err(DeError::new(format!(
                        "expected integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32);

impl Serialize for i64 {
    fn to_value(&self) -> Value {
        Value::Int(*self)
    }
}

impl Deserialize for i64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Int(v) => Ok(*v),
            Value::UInt(v) => i64::try_from(*v).map_err(DeError::new),
            other => Err(DeError::new(format!("expected integer, found {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(v) => Value::Int(v),
                    Err(_) => Value::UInt(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Int(v) => <$t>::try_from(*v).map_err(DeError::new),
                    Value::UInt(v) => <$t>::try_from(*v).map_err(DeError::new),
                    other => Err(DeError::new(format!(
                        "expected integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        i64::from_value(value).and_then(|v| isize::try_from(v).map_err(DeError::new))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Float(v) => Ok(*v),
            Value::Int(v) => Ok(*v as f64),
            Value::UInt(v) => Ok(*v as f64),
            other => Err(DeError::new(format!("expected number, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(v) => Ok(*v),
            other => Err(DeError::new(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(v) => Ok(v.clone()),
            other => Err(DeError::new(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(()),
            other => Err(DeError::new(format!("expected null, found {other:?}"))),
        }
    }
}

// --- container impls -------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

/// Renders a serialized key as a JSON object key (maps keep string keys in
/// JSON, so scalar keys are stringified the way `serde_json` does).
fn key_to_string(key: &Value) -> String {
    match key {
        Value::Str(s) => s.clone(),
        Value::Bool(b) => b.to_string(),
        Value::Int(v) => v.to_string(),
        Value::UInt(v) => v.to_string(),
        Value::Float(v) => v.to_string(),
        other => panic!("unsupported map key: {other:?}"),
    }
}

/// Inverse of [`key_to_string`]: decodes an object key as the map's key type.
///
/// Tries the key verbatim as a string first (so `String`-keyed maps always
/// round-trip, even when a key happens to look numeric), then falls back to
/// the most specific scalar interpretation for integer/float/bool keys.
fn key_from_string<K: Deserialize>(key: &str) -> Result<K, DeError> {
    if let Ok(k) = K::from_value(&Value::Str(key.to_owned())) {
        return Ok(k);
    }
    let scalar = if let Ok(v) = key.parse::<i64>() {
        Value::Int(v)
    } else if let Ok(v) = key.parse::<u64>() {
        Value::UInt(v)
    } else if let Ok(v) = key.parse::<f64>() {
        Value::Float(v)
    } else if let Ok(v) = key.parse::<bool>() {
        Value::Bool(v)
    } else {
        Value::Str(key.to_owned())
    };
    K::from_value(&scalar)
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::new(format!("expected object, found {other:?}"))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K: Deserialize + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::new(format!("expected object, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for std::ops::Range<T> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("start".to_string(), self.start.to_value()),
            ("end".to_string(), self.end.to_value()),
        ])
    }
}

impl<T: Deserialize> Deserialize for std::ops::Range<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let start = value
            .get("start")
            .ok_or_else(|| DeError::new("missing field `start`"))?;
        let end = value
            .get("end")
            .ok_or_else(|| DeError::new("missing field `end`"))?;
        Ok(T::from_value(start)?..T::from_value(end)?)
    }
}

impl<T: Serialize> Serialize for std::ops::RangeInclusive<T> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("start".to_string(), self.start().to_value()),
            ("end".to_string(), self.end().to_value()),
        ])
    }
}

impl<T: Deserialize> Deserialize for std::ops::RangeInclusive<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let start = value
            .get("start")
            .ok_or_else(|| DeError::new("missing field `start`"))?;
        let end = value
            .get("end")
            .ok_or_else(|| DeError::new("missing field `end`"))?;
        Ok(T::from_value(start)?..=T::from_value(end)?)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Array(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(DeError::new(format!(
                                "expected {expected}-tuple, found {} elements",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::new(format!("expected array, found {other:?}"))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i32::from_value(&42i32.to_value()).unwrap(), 42);
        assert_eq!(u64::from_value(&7u64.to_value()).unwrap(), 7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert!(Option::<u32>::from_value(&Value::Null).unwrap().is_none());
    }

    #[test]
    fn map_round_trips_even_with_numeric_looking_string_keys() {
        let mut map = std::collections::BTreeMap::new();
        map.insert("42".to_string(), 1.5f64);
        map.insert("name".to_string(), 2.5f64);
        let back =
            std::collections::BTreeMap::<String, f64>::from_value(&map.to_value()).unwrap();
        assert_eq!(back, map);

        let mut by_int = std::collections::BTreeMap::new();
        by_int.insert(42u32, "x".to_string());
        let back =
            std::collections::BTreeMap::<u32, String>::from_value(&by_int.to_value()).unwrap();
        assert_eq!(back, by_int);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let t = (1u32, "x".to_string(), 2.5f64);
        let back = <(u32, String, f64)>::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn object_lookup() {
        let obj = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(obj.get("a"), Some(&Value::Int(1)));
        assert_eq!(obj.get("b"), None);
    }
}
