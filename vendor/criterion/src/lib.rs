//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this crate provides the
//! small API surface the workspace benches use — [`Criterion`],
//! [`Bencher::iter`], [`BenchmarkId`], benchmark groups and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a simple
//! wall-clock timer instead of criterion's statistical machinery. Each
//! benchmark is warmed up briefly, then timed over enough iterations to fill
//! a fixed measurement window, and the mean iteration time is printed.
//!
//! `cargo bench` therefore runs and reports plausible numbers; swapping in
//! the real criterion later needs only a `Cargo.toml` change.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement settings plus the entry point benches receive.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_millis(800),
        }
    }
}

impl Criterion {
    /// Sets the measurement window for subsequent benchmarks.
    #[must_use]
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.measurement = duration;
        self
    }

    /// Sets the warm-up time for subsequent benchmarks.
    #[must_use]
    pub fn warm_up_time(mut self, duration: Duration) -> Self {
        self.warm_up = duration;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.warm_up, self.measurement, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.criterion.warm_up,
            self.criterion.measurement,
            &mut f,
        );
        self
    }

    /// Runs a benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.criterion.warm_up,
            self.criterion.measurement,
            &mut |b| f(b, input),
        );
        self
    }

    /// Finishes the group (a no-op in the stand-in).
    pub fn finish(self) {}
}

/// Identifier for a (possibly parameterized) benchmark.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(text: &str) -> Self {
        BenchmarkId {
            text: text.to_string(),
        }
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this measurement batch.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(id: &str, warm_up: Duration, measurement: Duration, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: also discovers roughly how long one iteration takes.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < warm_up {
        f(&mut bencher);
        warm_iters += bencher.iters;
        // Grow batches so cheap routines don't spend the window on overhead.
        bencher.iters = (bencher.iters * 2).min(1 << 20);
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

    // Measurement: one batch sized to fill the measurement window.
    let target_iters = if per_iter > 0.0 {
        (measurement.as_secs_f64() / per_iter).ceil() as u64
    } else {
        1
    }
    .clamp(1, 10_000_000);
    bencher.iters = target_iters;
    f(&mut bencher);
    let mean = bencher.elapsed.as_secs_f64() / target_iters as f64;
    println!("{id:<60} {:>12}   ({target_iters} iterations)", format_time(mean));
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut criterion = Criterion {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(1),
        };
        let mut ran = false;
        criterion.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(ran);
    }

    #[test]
    fn group_runs_with_input() {
        let mut criterion = Criterion {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(1),
        };
        let mut group = criterion.benchmark_group("g");
        let input = 21u32;
        group.bench_with_input(BenchmarkId::from_parameter(input), &input, |b, &i| {
            b.iter(|| i * 2)
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("resnet34").to_string(), "resnet34");
    }

    #[test]
    fn time_formatting_picks_units() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" us"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
