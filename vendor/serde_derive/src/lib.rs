//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! simplified value model of the vendored `serde` stand-in, using only the
//! compiler-provided `proc_macro` API (no `syn`/`quote`, which are not
//! available offline). Supports the shapes this workspace actually derives
//! on: named-field structs, tuple structs, unit structs, and enums with
//! unit, tuple and struct variants, plus simple type generics.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the type a derive is attached to.
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Input {
    name: String,
    /// Type-parameter identifiers, e.g. `["T"]` for `Matrix<T>`.
    generics: Vec<String>,
    shape: Shape,
}

/// Derives `serde::Serialize` (stand-in data model).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let body = serialize_body(&parsed);
    let (impl_generics, ty_generics) = generics_for(&parsed, "::serde::Serialize");
    let name = &parsed.name;
    format!(
        "impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (stand-in data model).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let body = deserialize_body(&parsed);
    let (impl_generics, ty_generics) = generics_for(&parsed, "::serde::Deserialize");
    let name = &parsed.name;
    format!(
        "impl{impl_generics} ::serde::Deserialize for {name}{ty_generics} {{\n\
             fn from_value(value: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

fn generics_for(input: &Input, bound: &str) -> (String, String) {
    if input.generics.is_empty() {
        (String::new(), String::new())
    } else {
        let bounded: Vec<String> = input
            .generics
            .iter()
            .map(|g| format!("{g}: {bound}"))
            .collect();
        (
            format!("<{}>", bounded.join(", ")),
            format!("<{}>", input.generics.join(", ")),
        )
    }
}

// --- parsing ---------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`, including doc comments) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // `#` + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // `pub(crate)` etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected type name, found {other:?}"),
    };
    i += 1;

    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            i += 1;
            let mut depth = 1usize;
            let mut expecting_param = true;
            while depth > 0 {
                match tokens.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                    Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                        expecting_param = true;
                        i += 1;
                        continue;
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                        // Lifetime parameter: consume the tick and its ident.
                        expecting_param = false;
                        i += 2;
                        continue;
                    }
                    Some(TokenTree::Ident(id)) if depth == 1 && expecting_param => {
                        let text = id.to_string();
                        if text == "const" {
                            panic!("derive: const generics are not supported by the stand-in");
                        }
                        generics.push(text);
                        expecting_param = false;
                    }
                    None => panic!("derive: unterminated generics on `{name}`"),
                    _ => {}
                }
                i += 1;
            }
        }
    }

    let shape = if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            Some(TokenTree::Ident(id)) if id.to_string() == "where" => {
                panic!("derive: `where` clauses are not supported by the stand-in")
            }
            other => panic!("derive: unsupported struct body for `{name}`: {other:?}"),
        }
    } else if kind == "enum" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("derive: unsupported enum body for `{name}`: {other:?}"),
        }
    } else {
        panic!("derive: `{kind}` items are not supported (only struct/enum)");
    };

    Input {
        name,
        generics,
        shape,
    }
}

/// Extracts the field names of a named-field struct body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility before the field name.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                i += 1;
                // Expect `:`, then skip the type up to a top-level comma.
                match tokens.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
                    other => panic!("derive: expected `:` after field name, found {other:?}"),
                }
                let mut angle_depth = 0usize;
                while let Some(tok) = tokens.get(i) {
                    match tok {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => {
                            angle_depth = angle_depth.saturating_sub(1)
                        }
                        TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            other => panic!("derive: unexpected token in struct body: {other:?}"),
        }
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0usize;
    for (idx, tok) in tokens.iter().enumerate() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p)
                if p.as_char() == ',' && angle_depth == 0 && idx + 1 < tokens.len() =>
            {
                count += 1; // a comma not at the end separates two fields
            }
            _ => {}
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2; // attribute such as `#[default]` or a doc comment
            }
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            TokenTree::Ident(id) => {
                let name = id.to_string();
                i += 1;
                let fields = match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        i += 1;
                        VariantFields::Tuple(count_tuple_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        i += 1;
                        VariantFields::Named(parse_named_fields(g.stream()))
                    }
                    _ => VariantFields::Unit,
                };
                if let Some(TokenTree::Punct(p)) = tokens.get(i) {
                    if p.as_char() == '=' {
                        panic!("derive: explicit discriminants are not supported");
                    }
                }
                variants.push(Variant { name, fields });
            }
            other => panic!("derive: unexpected token in enum body: {other:?}"),
        }
    }
    variants
}

// --- code generation -------------------------------------------------------

fn serialize_body(input: &Input) -> String {
    match &input.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", entries.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(serialize_variant_arm).collect();
            format!("match self {{\n{}\n}}", arms.join("\n"))
        }
    }
}

fn serialize_variant_arm(variant: &Variant) -> String {
    let v = &variant.name;
    match &variant.fields {
        VariantFields::Unit => format!(
            "Self::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
        ),
        VariantFields::Tuple(1) => format!(
            "Self::{v}(f0) => ::serde::Value::Object(::std::vec![\
             (::std::string::String::from(\"{v}\"), ::serde::Serialize::to_value(f0))]),"
        ),
        VariantFields::Tuple(n) => {
            let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let values: Vec<String> = binders
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b})"))
                .collect();
            format!(
                "Self::{v}({}) => ::serde::Value::Object(::std::vec![\
                 (::std::string::String::from(\"{v}\"), \
                 ::serde::Value::Array(::std::vec![{}]))]),",
                binders.join(", "),
                values.join(", ")
            )
        }
        VariantFields::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "Self::{v} {{ {} }} => ::serde::Value::Object(::std::vec![\
                 (::std::string::String::from(\"{v}\"), \
                 ::serde::Value::Object(::std::vec![{}]))]),",
                fields.join(", "),
                entries.join(", ")
            )
        }
    }
}

fn deserialize_body(input: &Input) -> String {
    match &input.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(value.get(\"{f}\")\
                         .ok_or_else(|| ::serde::DeError::new(\"missing field `{f}`\"))?)?,"
                    )
                })
                .collect();
            format!("::std::result::Result::Ok(Self {{\n{}\n}})", entries.join("\n"))
        }
        Shape::TupleStruct(1) => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(value)?))"
                .to_string()
        }
        Shape::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match value {{\n\
                 ::serde::Value::Array(items) if items.len() == {n} => \
                 ::std::result::Result::Ok(Self({})),\n\
                 other => ::std::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"expected {n}-element array, found {{other:?}}\"))),\n\
                 }}",
                entries.join(", ")
            )
        }
        Shape::UnitStruct => "::std::result::Result::Ok(Self)".to_string(),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| {
                    format!(
                        "::serde::Value::Str(s) if s == \"{0}\" => \
                         ::std::result::Result::Ok(Self::{0}),",
                        v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(deserialize_tagged_arm)
                .collect();
            format!(
                "match value {{\n{}\n{}\n\
                 other => ::std::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"unknown enum value {{other:?}}\"))),\n}}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    }
}

fn deserialize_tagged_arm(variant: &Variant) -> Option<String> {
    let v = &variant.name;
    match &variant.fields {
        VariantFields::Unit => None,
        VariantFields::Tuple(1) => Some(format!(
            "::serde::Value::Object(fields) \
             if fields.len() == 1 && fields[0].0 == \"{v}\" => \
             ::std::result::Result::Ok(Self::{v}(\
             ::serde::Deserialize::from_value(&fields[0].1)?)),"
        )),
        VariantFields::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            Some(format!(
                "::serde::Value::Object(fields) \
                 if fields.len() == 1 && fields[0].0 == \"{v}\" => \
                 match &fields[0].1 {{\n\
                 ::serde::Value::Array(items) if items.len() == {n} => \
                 ::std::result::Result::Ok(Self::{v}({})),\n\
                 other => ::std::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"expected {n}-element array for `{v}`, found {{other:?}}\"))),\n\
                 }},",
                entries.join(", ")
            ))
        }
        VariantFields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(payload.get(\"{f}\")\
                         .ok_or_else(|| ::serde::DeError::new(\"missing field `{f}`\"))?)?,"
                    )
                })
                .collect();
            Some(format!(
                "::serde::Value::Object(fields) \
                 if fields.len() == 1 && fields[0].0 == \"{v}\" => {{\n\
                 let payload = &fields[0].1;\n\
                 ::std::result::Result::Ok(Self::{v} {{\n{}\n}})\n\
                 }},",
                entries.join("\n")
            ))
        }
    }
}
