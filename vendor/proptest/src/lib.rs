//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate reimplements
//! the subset of proptest the workspace's property tests use:
//!
//! * the [`Strategy`](strategy::Strategy) trait with range, tuple,
//!   [`Just`](strategy::Just), [`prop_map`](strategy::Strategy::prop_map) and
//!   [`prop_filter`](strategy::Strategy::prop_filter) strategies;
//! * [`any::<T>()`](arbitrary::any) for the primitive types;
//! * [`collection::vec`] for randomly sized vectors;
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`] and [`prop_assume!`] macros, and
//!   [`ProptestConfig`](test_runner::ProptestConfig).
//!
//! Differences from the real crate: generation is driven by a deterministic
//! per-test seed (derived from the test's module path and name, or the
//! `PROPTEST_SEED` environment variable when set) so CI runs are
//! reproducible, and failing cases are reported without shrinking.

#![forbid(unsafe_code)]

/// Deterministic pseudo-random generation and the test-case runner types.
pub mod test_runner {
    /// Why a generated case did not produce a verdict.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case was rejected (filtered out or `prop_assume!` failed).
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Creates a rejection.
        pub fn reject(reason: impl std::fmt::Display) -> Self {
            TestCaseError::Reject(reason.to_string())
        }

        /// Creates a failure.
        pub fn fail(reason: impl std::fmt::Display) -> Self {
            TestCaseError::Fail(reason.to_string())
        }
    }

    /// Outcome of a single generated test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases each property must pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Runs each property against `cases` accepted inputs.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// SplitMix64 generator: tiny, fast and statistically fine for tests.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from an explicit seed.
        #[must_use]
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Derives a deterministic seed from a test's fully qualified name,
        /// honouring `PROPTEST_SEED` when the caller wants a different run.
        #[must_use]
        pub fn from_name(name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            if let Ok(seed) = std::env::var("PROPTEST_SEED") {
                if let Ok(extra) = seed.trim().parse::<u64>() {
                    hash ^= extra.rotate_left(17);
                }
            }
            TestRng::new(hash)
        }

        /// Returns the next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Returns a uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and its combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    ///
    /// Returning `None` from [`gen_value`](Strategy::gen_value) rejects the
    /// current case (used by filters); the runner then retries with fresh
    /// randomness.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value, or `None` to reject this case.
        fn gen_value(&self, rng: &mut TestRng) -> Option<Self::Value>;

        /// Transforms generated values with `map`.
        fn prop_map<U, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, map }
        }

        /// Rejects generated values failing `predicate`.
        fn prop_filter<F>(self, _reason: &'static str, predicate: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                predicate,
            }
        }

        /// Generates a value, then generates from the strategy it maps to.
        fn prop_flat_map<S, F>(self, map: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, map }
        }
    }

    /// A strategy that always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn gen_value(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn gen_value(&self, rng: &mut TestRng) -> Option<U> {
            self.source.gen_value(rng).map(&self.map)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        source: S,
        predicate: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            self.source.gen_value(rng).filter(|v| (self.predicate)(v))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        map: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn gen_value(&self, rng: &mut TestRng) -> Option<T::Value> {
            let inner = (self.map)(self.source.gen_value(rng)?);
            inner.gen_value(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> Option<$t> {
                    if self.start >= self.end {
                        return None;
                    }
                    let lo = self.start as i128;
                    let span = (self.end as i128 - lo) as u128;
                    let offset = (u128::from(rng.next_u64()) % span) as i128;
                    Some((lo + offset) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> Option<$t> {
                    if self.start() > self.end() {
                        return None;
                    }
                    let lo = *self.start() as i128;
                    let span = (*self.end() as i128 - lo) as u128 + 1;
                    let offset = (u128::from(rng.next_u64()) % span) as i128;
                    Some((lo + offset) as $t)
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn gen_value(&self, rng: &mut TestRng) -> Option<f64> {
            // NaN bounds compare as not-less and therefore reject.
            if self.start.partial_cmp(&self.end) != Some(std::cmp::Ordering::Less) {
                return None;
            }
            Some(self.start + rng.next_f64() * (self.end - self.start))
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn gen_value(&self, rng: &mut TestRng) -> Option<f32> {
            // NaN bounds compare as not-less and therefore reject.
            if self.start.partial_cmp(&self.end) != Some(std::cmp::Ordering::Less) {
                return None;
            }
            Some(self.start + (rng.next_f64() as f32) * (self.end - self.start))
        }
    }

    macro_rules! tuple_strategies {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn gen_value(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    Some(($(self.$idx.gen_value(rng)?,)+))
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

/// `any::<T>()` support for the primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain generation strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            u128::arbitrary(rng) as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite values only: the workspace's properties are arithmetic.
            (rng.next_f64() - 0.5) * 2e12
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::arbitrary(rng) as f32
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            char::from_u32((rng.next_u64() % 0xD800) as u32).unwrap_or('\u{FFFD}')
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> Option<T> {
            Some(T::arbitrary(rng))
        }
    }

    /// Produces the canonical strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Strategies for collections (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            SizeRange {
                min: range.start,
                max: range.end.saturating_sub(1),
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *range.start(),
                max: *range.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange { min: len, max: len }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            if self.size.min > self.size.max {
                return None;
            }
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.gen_value(rng)?);
            }
            Some(out)
        }
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn` body runs against many generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest!(@impl ($config);
            $( $(#[$meta])* fn $name($($pat in $strat),*) $body )*);
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default());
            $( $(#[$meta])* fn $name($($pat in $strat),*) $body )*);
    };
    (@impl ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),*) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)));
                let mut __accepted: u32 = 0;
                let mut __attempts: u64 = 0;
                let __max_attempts: u64 =
                    u64::from(__config.cases).saturating_mul(256).max(4096);
                'cases: while __accepted < __config.cases {
                    __attempts += 1;
                    if __attempts > __max_attempts {
                        panic!(
                            "proptest stand-in: {} rejected too many cases \
                             ({} accepted of {} wanted)",
                            stringify!($name), __accepted, __config.cases
                        );
                    }
                    $(
                        let $pat = match $crate::strategy::Strategy::gen_value(
                            &($strat), &mut __rng)
                        {
                            ::core::option::Option::Some(v) => v,
                            ::core::option::Option::None => continue 'cases,
                        };
                    )*
                    let __result: $crate::test_runner::TestCaseResult =
                        (move || { $body ::core::result::Result::Ok(()) })();
                    match __result {
                        ::core::result::Result::Ok(()) => __accepted += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_)) => {
                            continue 'cases;
                        }
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {} failed after {} accepted cases: {}",
                                stringify!($name), __accepted, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` for property bodies: failure aborts the case with a report.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!(
                    "{} at {}:{}", ::std::format!($($fmt)*), file!(), line!()
                ))
            );
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = &$left;
        let __right = &$right;
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __left, __right
        );
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = &$left;
        let __right = &$right;
        $crate::prop_assert!(
            *__left != *__right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), __left
        );
    }};
}

/// Rejects the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Reject(
                    ::std::string::String::from(stringify!($cond))
                )
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::new(7);
        for _ in 0..1000 {
            let v = (1u32..=12).gen_value(&mut rng).unwrap();
            assert!((1..=12).contains(&v));
            let w = (-1000i64..1000).gen_value(&mut rng).unwrap();
            assert!((-1000..1000).contains(&w));
            let f = (-0.999f64..0.999).gen_value(&mut rng).unwrap();
            assert!((-0.999..0.999).contains(&f));
        }
    }

    #[test]
    fn filters_reject() {
        let mut rng = crate::test_runner::TestRng::new(3);
        let strategy = (1u32..=4).prop_filter("even only", |v| v % 2 == 0);
        let mut seen_none = false;
        for _ in 0..100 {
            match strategy.gen_value(&mut rng) {
                Some(v) => assert!(v % 2 == 0),
                None => seen_none = true,
            }
        }
        assert!(seen_none, "odd draws must be rejected");
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = crate::test_runner::TestRng::new(11);
        for _ in 0..200 {
            let v = prop::collection::vec(any::<i32>(), 0..12)
                .gen_value(&mut rng)
                .unwrap();
            assert!(v.len() < 12);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works((a, b) in (0u64..100, 0u64..100), flag in any::<bool>()) {
            prop_assume!(a != 99);
            prop_assert!(a < 100);
            prop_assert_eq!(a + b, b + a);
            if flag {
                prop_assert_ne!(a, a + b + 1);
            }
        }
    }
}
