//! Property tests: parsing inverts emission over randomized `Value` trees.

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use serde::Value;

/// Generates an arbitrary JSON value tree of bounded depth and width.
///
/// Floats are always finite (the emitter renders non-finite floats as
/// `null`, so they cannot round-trip by design) and object keys are unique
/// (the strict parser rejects duplicates, and maps can never emit them).
fn arbitrary_value(rng: &mut TestRng, depth: u32) -> Value {
    let scalar_only = depth == 0;
    let choice = rng.next_u64() % if scalar_only { 6 } else { 8 };
    match choice {
        0 => Value::Null,
        1 => Value::Bool(rng.next_u64().is_multiple_of(2)),
        2 => Value::Int(rng.next_u64() as i64),
        3 => Value::UInt(i64::MAX as u64 + 1 + rng.next_u64() % 1000),
        4 => {
            // Mix plain decimals, huge/tiny magnitudes and negatives.
            let base = rng.next_f64() * 2e6 - 1e6;
            let scale = [1.0, 1e-30, 1e30, 1e300][(rng.next_u64() % 4) as usize];
            Value::Float(base * scale)
        }
        5 => Value::Str(arbitrary_string(rng)),
        6 => {
            let len = (rng.next_u64() % 5) as usize;
            Value::Array((0..len).map(|_| arbitrary_value(rng, depth - 1)).collect())
        }
        _ => {
            let len = (rng.next_u64() % 5) as usize;
            Value::Object(
                (0..len)
                    .map(|i| {
                        // A unique counter suffix keeps keys distinct.
                        let key = format!("{}_{i}", arbitrary_string(rng));
                        (key, arbitrary_value(rng, depth - 1))
                    })
                    .collect(),
            )
        }
    }
}

/// Random strings spanning ASCII, escapes, control characters and
/// multi-byte UTF-8 (including astral-plane scalars).
fn arbitrary_string(rng: &mut TestRng) -> String {
    const ALPHABET: [char; 16] = [
        'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\t', '\u{0}', '\u{1b}', 'é', 'ß', '中',
        '\u{2028}', '😀',
    ];
    let len = (rng.next_u64() % 12) as usize;
    (0..len)
        .map(|_| ALPHABET[(rng.next_u64() % ALPHABET.len() as u64) as usize])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Strict parsing is a left inverse of compact emission.
    #[test]
    fn parse_inverts_to_string(seed in any::<u64>()) {
        let mut rng = TestRng::new(seed);
        let value = arbitrary_value(&mut rng, 4);
        let text = serde_json::to_string(&value).unwrap();
        let parsed: Value = serde_json::from_str(&text).unwrap();
        prop_assert_eq!(&parsed, &value);
    }

    /// Pretty-printed output parses back to the same tree too (the parser
    /// must be insensitive to the emitter's indentation).
    #[test]
    fn parse_inverts_to_string_pretty(seed in any::<u64>()) {
        let mut rng = TestRng::new(seed);
        let value = arbitrary_value(&mut rng, 3);
        let text = serde_json::to_string_pretty(&value).unwrap();
        let parsed: Value = serde_json::from_str(&text).unwrap();
        prop_assert_eq!(&parsed, &value);
    }

    /// Emission of a parsed tree re-parses to the same tree (idempotence of
    /// the canonical form).
    #[test]
    fn emission_is_canonical(seed in any::<u64>()) {
        let mut rng = TestRng::new(seed);
        let value = arbitrary_value(&mut rng, 3);
        let canonical = serde_json::to_string(&value).unwrap();
        let reparsed: Value = serde_json::from_str(&canonical).unwrap();
        prop_assert_eq!(serde_json::to_string(&reparsed).unwrap(), canonical);
    }
}
