//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde` stand-in's [`serde::Value`] tree as JSON
//! text. Only the emission half of the real crate is provided
//! ([`to_string`] and [`to_string_pretty`]), which is all this workspace
//! uses (the `--json` flag of the figure-regeneration binaries).

#![forbid(unsafe_code)]

use serde::{Serialize, Value};
use std::fmt;

/// Error type mirroring `serde_json::Error`.
///
/// JSON emission of the stand-in data model is infallible, so this is only
/// here to keep the `Result`-returning signatures of the real crate.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes a value as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value as a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(v) => write_float(out, *v),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, v: f64) {
    if v.is_finite() {
        let text = v.to_string();
        out.push_str(&text);
        // Match serde_json: floats always carry a decimal point or exponent.
        if !text.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // Real serde_json rejects non-finite floats; emitting null keeps the
        // infallible signature while staying valid JSON.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let value = Value::Object(vec![
            ("a".into(), Value::Int(1)),
            ("b".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::Float(1.5)),
        ]);
        struct Wrap(Value);
        impl Serialize for Wrap {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        assert_eq!(
            to_string(&Wrap(value)).unwrap(),
            r#"{"a":1,"b":[true,null],"c":1.5}"#
        );
    }

    #[test]
    fn pretty_rendering_indents() {
        let rendered = to_string_pretty(&vec![1u32, 2]).unwrap();
        assert_eq!(rendered, "[\n  1,\n  2\n]");
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string("a\"b\n").unwrap(), r#""a\"b\n""#);
    }
}
