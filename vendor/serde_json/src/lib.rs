//! Offline stand-in for `serde_json`.
//!
//! Covers both halves of the real crate over the vendored `serde`
//! stand-in's [`serde::Value`] data model:
//!
//! * **emission** — [`to_string`] and [`to_string_pretty`] render any
//!   `T: Serialize` as JSON text (used by the `--json` flag of the
//!   figure-regeneration binaries);
//! * **parsing** — [`from_str`] runs the strict recursive-descent parser
//!   below and decodes the resulting [`serde::Value`] tree into any
//!   `T: Deserialize` (used by the `arrayflex-serve` HTTP service);
//!   [`from_value`] decodes an already-parsed tree.
//!
//! The parser is strict JSON (RFC 8259): every escape sequence is
//! validated (including `\uXXXX` surrogate pairs), numbers follow the JSON
//! grammar exactly (integers land in `Value::Int`/`Value::UInt`, anything
//! with a fraction or exponent in `Value::Float`), duplicate object keys
//! and trailing input are rejected, and nesting is capped at
//! [`MAX_DEPTH`] so hostile inputs cannot overflow the stack.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error type mirroring `serde_json::Error`: emission problems (which the
/// stand-in data model cannot actually produce), parse errors (with the
/// byte offset of the offending input) and decode errors.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn parse(offset: usize, message: impl fmt::Display) -> Self {
        Error(format!("{message} at byte {offset}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Maximum nesting depth the parser accepts before rejecting the input
/// (arrays and objects combined), so untrusted documents cannot overflow
/// the recursive-descent stack.
pub const MAX_DEPTH: usize = 128;

/// Deserializes a value of type `T` from a JSON string.
///
/// # Errors
///
/// Returns an error if the input is not valid JSON (strict RFC 8259
/// grammar, [`MAX_DEPTH`] nesting cap, no duplicate object keys, no
/// trailing input) or if the parsed tree does not decode into `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        input,
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value(0)?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::parse(parser.pos, "trailing characters after JSON value"));
    }
    from_value(&value)
}

/// Decodes an already-parsed [`Value`] tree into `T`.
///
/// # Errors
///
/// Returns an error if the tree does not match the shape `T` expects.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(|e| Error(e.to_string()))
}

// --- the strict recursive-descent parser -----------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    input: &'a str,
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(self.pos, format!("expected `{}`", byte as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::parse(self.pos, format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::parse(
                self.pos,
                format!("unexpected character `{}`", other as char),
            )),
            None => Err(Error::parse(self.pos, "unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error::parse(self.pos, format!("expected `{keyword}`")))
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse(self.pos, "expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Value)> = Vec::new();
        // Duplicate keys are detected via a side set so the check stays
        // O(1) per key — this parser sits on an untrusted HTTP path, and a
        // linear rescan of `fields` would make wide hostile objects
        // quadratic.
        let mut seen_keys: std::collections::HashSet<String> = std::collections::HashSet::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key_offset = self.pos;
            let key = self.parse_string()?;
            if !seen_keys.insert(key.clone()) {
                return Err(Error::parse(key_offset, format!("duplicate object key \"{key}\"")));
            }
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value(depth + 1)?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::parse(self.pos, "expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::parse(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.parse_escape(&mut out)?;
                }
                Some(c) if c < 0x20 => {
                    return Err(Error::parse(self.pos, "unescaped control character in string"));
                }
                Some(c) if c < 0x80 => {
                    out.push(c as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 scalar: the input is a `&str`, so the
                    // sequence is already valid; copy it whole.
                    let ch = self.input[self.pos..]
                        .chars()
                        .next()
                        .expect("position is on a char boundary");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<(), Error> {
        let Some(escape) = self.peek() else {
            return Err(Error::parse(self.pos, "unterminated escape sequence"));
        };
        self.pos += 1;
        match escape {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let high = self.parse_hex4()?;
                let scalar = if (0xD800..=0xDBFF).contains(&high) {
                    // High surrogate: a `\uXXXX` low surrogate must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                    } else {
                        return Err(Error::parse(self.pos, "unpaired high surrogate"));
                    }
                    self.expect(b'u')
                        .map_err(|_| Error::parse(self.pos, "unpaired high surrogate"))?;
                    let low = self.parse_hex4()?;
                    if !(0xDC00..=0xDFFF).contains(&low) {
                        return Err(Error::parse(self.pos, "invalid low surrogate"));
                    }
                    0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00)
                } else if (0xDC00..=0xDFFF).contains(&high) {
                    return Err(Error::parse(self.pos, "unpaired low surrogate"));
                } else {
                    high
                };
                out.push(
                    char::from_u32(scalar)
                        .ok_or_else(|| Error::parse(self.pos, "invalid unicode escape"))?,
                );
            }
            other => {
                return Err(Error::parse(
                    self.pos - 1,
                    format!("invalid escape character `{}`", other as char),
                ));
            }
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut scalar = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(Error::parse(self.pos, "expected four hex digits after \\u")),
            };
            scalar = scalar * 16 + digit;
            self.pos += 1;
        }
        Ok(scalar)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        // Integer part: `0` alone or a non-zero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(Error::parse(self.pos, "expected a digit")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(Error::parse(self.pos, "expected a digit after `.`"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(Error::parse(self.pos, "expected a digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = &self.input[start..self.pos];
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Int(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
            // Fall through: integers beyond u64 degrade to f64, like the
            // real serde_json's Value parsing.
        }
        let parsed = text
            .parse::<f64>()
            .map_err(|e| Error::parse(start, format!("invalid number: {e}")))?;
        if parsed.is_finite() {
            Ok(Value::Float(parsed))
        } else {
            Err(Error::parse(start, "number out of range"))
        }
    }
}

/// Serializes a value as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value as compact JSON **appended to a caller-provided
/// buffer**, reusing its capacity. The bytes appended are exactly what
/// [`to_string`] would have produced; callers that know an approximate
/// output size (e.g. an HTTP service that remembers the last response
/// size per route) can pre-size the buffer with
/// [`String::with_capacity`] and avoid the incremental reallocation of a
/// growing response body.
pub fn to_string_into<T: Serialize + ?Sized>(value: &T, out: &mut String) -> Result<(), Error> {
    write_value(out, &value.to_value(), None, 0);
    Ok(())
}

/// Serializes a value as a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(v) => write_float(out, *v),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, v: f64) {
    if v.is_finite() {
        let text = v.to_string();
        out.push_str(&text);
        // Match serde_json: floats always carry a decimal point or exponent.
        if !text.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // Real serde_json rejects non-finite floats; emitting null keeps the
        // infallible signature while staying valid JSON.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let value = Value::Object(vec![
            ("a".into(), Value::Int(1)),
            ("b".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::Float(1.5)),
        ]);
        struct Wrap(Value);
        impl Serialize for Wrap {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        assert_eq!(
            to_string(&Wrap(value)).unwrap(),
            r#"{"a":1,"b":[true,null],"c":1.5}"#
        );
    }

    #[test]
    fn pretty_rendering_indents() {
        let rendered = to_string_pretty(&vec![1u32, 2]).unwrap();
        assert_eq!(rendered, "[\n  1,\n  2\n]");
    }

    #[test]
    fn to_string_into_appends_identical_bytes_without_reallocating() {
        let value = vec![1u32, 2, 3];
        let direct = to_string(&value).unwrap();
        let mut buffer = String::with_capacity(64);
        let capacity = buffer.capacity();
        to_string_into(&value, &mut buffer).unwrap();
        assert_eq!(buffer, direct);
        assert_eq!(buffer.capacity(), capacity, "pre-sized buffer must not grow");
        // Appending is deliberate: a caller-owned prefix survives.
        let mut prefixed = String::from("x");
        to_string_into(&value, &mut prefixed).unwrap();
        assert_eq!(prefixed, format!("x{direct}"));
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string("a\"b\n").unwrap(), r#""a\"b\n""#);
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str::<Value>("null").unwrap(), Value::Null);
        assert_eq!(from_str::<Value>("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str::<Value>("false").unwrap(), Value::Bool(false));
        assert_eq!(from_str::<Value>("42").unwrap(), Value::Int(42));
        assert_eq!(from_str::<Value>("-7").unwrap(), Value::Int(-7));
        assert_eq!(from_str::<Value>("0").unwrap(), Value::Int(0));
        assert_eq!(
            from_str::<Value>("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        assert_eq!(from_str::<Value>("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(from_str::<Value>("-2.5e3").unwrap(), Value::Float(-2500.0));
        assert_eq!(from_str::<Value>("1E-2").unwrap(), Value::Float(0.01));
        assert_eq!(from_str::<Value>(r#""hi""#).unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_into_rust_types() {
        assert_eq!(from_str::<u32>("17").unwrap(), 17);
        assert_eq!(from_str::<Vec<u32>>("[1, 2, 3]").unwrap(), vec![1, 2, 3]);
        assert_eq!(from_str::<Option<bool>>("null").unwrap(), None);
        assert_eq!(
            from_str::<(u32, String)>(r#"[9, "x"]"#).unwrap(),
            (9, "x".to_string())
        );
        assert!(from_str::<u32>("-1").is_err());
        assert_eq!(from_value::<u32>(&Value::Int(3)).unwrap(), 3);
    }

    #[test]
    fn parses_nested_containers_and_whitespace() {
        let value = from_str::<Value>(" { \"a\" : [ 1 , { \"b\" : null } ] , \"c\": {} } ").unwrap();
        assert_eq!(
            value,
            Value::Object(vec![
                (
                    "a".into(),
                    Value::Array(vec![
                        Value::Int(1),
                        Value::Object(vec![("b".into(), Value::Null)]),
                    ]),
                ),
                ("c".into(), Value::Object(vec![])),
            ])
        );
    }

    #[test]
    fn parses_every_escape_and_surrogate_pairs() {
        let parsed = from_str::<String>(r#""\"\\\/\b\f\n\r\tAé😀""#).unwrap();
        assert_eq!(parsed, "\"\\/\u{8}\u{c}\n\r\tA\u{e9}\u{1F600}");
        // Raw multi-byte UTF-8 passes through untouched.
        assert_eq!(from_str::<String>("\"héllo – 😀\"").unwrap(), "héllo – 😀");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "nul",
            "truth",
            "01",
            "1.",
            ".5",
            "1e",
            "+1",
            "--1",
            "\"unterminated",
            "\"bad \\x escape\"",
            "\"lone \\ud800 surrogate\"",
            "\"\\ud800\\u0041\"",
            "\"ctrl \u{1} char\"",
            "[1,]",
            "[1 2]",
            "{\"a\":1,}",
            "{\"a\" 1}",
            "{a: 1}",
            "{\"a\":1 \"b\":2}",
            "[1] trailing",
            "1e999",
            "{\"dup\":1,\"dup\":2}",
        ] {
            assert!(from_str::<Value>(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_limit_rejects_hostile_nesting() {
        let deep_ok = format!("{}0{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(from_str::<Value>(&deep_ok).is_ok());
        let too_deep = format!("{}0{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        let err = from_str::<Value>(&too_deep).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
    }

    #[test]
    fn errors_report_the_byte_offset() {
        let err = from_str::<Value>("[1, flase]").unwrap_err();
        assert!(err.to_string().contains("at byte 4"), "{err}");
    }
}
