//! Smoke tests keeping the `examples/` binaries honest.
//!
//! `cargo test` builds every example (the compile gate below forces it even
//! when only this test target is requested), and the tests here drive the
//! same library calls `examples/quickstart.rs` makes, asserting the claims
//! its output prints. If an example's API usage rots, this file fails.

use arrayflex::{compare_network, ArrayFlexModel};
use cnn::models::resnet34;
use cnn::DepthwiseMapping;
use gemm::GemmDims;
use std::path::Path;
use std::process::Command;

/// The exact single-layer workload `examples/quickstart.rs` walks through
/// (ResNet-34 layer 28, the Fig. 5(b) GEMM).
#[test]
fn quickstart_single_layer_logic() {
    let model = ArrayFlexModel::new(128, 128).expect("paper-calibrated model");
    let dims = GemmDims::new(512, 2304, 49);

    let conventional = model.execute_conventional(dims).expect("conventional run");
    for k in [1, 2, 4] {
        let execution = model.execute_arrayflex(dims, k).expect("arrayflex run");
        // Collapsing trades cycles for clock period; cycle count never grows.
        assert!(execution.cycles <= conventional.cycles);
    }

    let best = model.optimal_depth(dims).expect("optimal depth");
    assert!([1, 2, 4].contains(&best.collapse_depth));
    assert!(best.continuous_estimate.is_finite());
    // The chosen mode is no slower than any supported mode (quickstart's
    // table is sorted by the same criterion).
    for k in [1, 2, 4] {
        let execution = model.execute_arrayflex(dims, k).expect("arrayflex run");
        assert!(best.execution.time <= execution.time);
    }
}

/// The whole-network half of quickstart: ArrayFlex beats the conventional
/// array on ResNet-34 in time, power and EDP (the printed claims).
#[test]
fn quickstart_network_logic() {
    let model = ArrayFlexModel::new(128, 128).expect("paper-calibrated model");
    let comparison =
        compare_network(&model, &resnet34(), DepthwiseMapping::default()).expect("comparison");
    assert!(comparison.time_saving() > 0.0);
    assert!(comparison.power_saving() > 0.0);
    assert!(comparison.edp_gain() > 1.0);

    let layers = comparison.arrayflex.layers.len();
    assert_eq!(layers, resnet34().layers().len());
    let shallow = comparison.arrayflex.shallow_layer_fraction();
    assert!((0.0..=1.0).contains(&shallow));
}

/// The round trip `examples/serve_client.rs` walks through: an in-process
/// HTTP server's `/v1/plan` response is byte-identical to the direct
/// library call, and the repeated request is a cache hit.
#[test]
fn serve_client_round_trip_logic() {
    use arrayflex_repro::serve::client;
    use arrayflex_repro::serve::http::{serve, ServerConfig};

    let handle = serve(ServerConfig::default()).expect("bind loopback");
    let request = r#"{"network":"resnet34","rows":128,"cols":128}"#;
    let response = client::post_json(handle.addr(), "/v1/plan", request).expect("plan request");
    assert_eq!(response.status, 200);

    let model = ArrayFlexModel::new(128, 128).expect("paper-calibrated model");
    let direct = model
        .plan_arrayflex(&resnet34(), DepthwiseMapping::default())
        .expect("direct plan");
    let direct_json = serde_json::to_string(&direct).expect("plan serializes");
    assert_eq!(response.body, direct_json.into_bytes());

    let cached = client::post_json(handle.addr(), "/v1/plan", request).expect("cached request");
    assert_eq!(cached.body, response.body);
    assert_eq!(handle.state().cache().hits(), 1);
    handle.shutdown();
}

/// Compile gate: building the examples is part of the test run.
///
/// `cargo test` already builds examples of the same package, but only this
/// explicit invocation makes the gate visible (and keeps working if the
/// examples are ever moved to another crate).
#[test]
fn all_examples_compile() {
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    assert!(
        Path::new(manifest_dir).join("examples/quickstart.rs").exists(),
        "examples/ directory moved; update this test"
    );
    let status = Command::new(env!("CARGO"))
        .args(["build", "--examples", "--quiet"])
        .current_dir(manifest_dir)
        .status()
        .expect("cargo is runnable from within tests");
    assert!(status.success(), "`cargo build --examples` failed");
}
