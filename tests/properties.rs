//! Workspace-level property-based tests: randomized invariants that span
//! the substrate crates and the core model.

use arrayflex::{ArrayFlexModel, EvaluationSweep, ParallelExecutor};
use cnn::models::synthetic_cnn;
use cnn::DepthwiseMapping;
use gemm::rng::SplitMix64;
use gemm::{multiply, tiled_multiply, GemmDims, Matrix};
use proptest::prelude::*;
use sa_sim::{ArrayConfig, Dataflow, Simulator};

/// Strategy for small GEMM dimensions that keep the cycle-accurate
/// simulator fast while still exercising tiling and skew.
fn small_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..=10, 1usize..=24, 1usize..=20)
}

/// Strategy for small array geometries and collapse depths.
fn small_array() -> impl Strategy<Value = (u32, u32, u32)> {
    (1u32..=12, 1u32..=12, 1u32..=4)
        .prop_filter("collapse depth must fit the array", |(r, c, k)| {
            k <= r && k <= c
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The cycle-accurate simulation of any small GEMM, on any array
    /// geometry and pipeline mode, is bit-identical to the reference GEMM
    /// and consumes exactly the cycle count of Equations (1)-(4).
    #[test]
    fn simulator_matches_reference_and_latency_model(
        (t, n, m) in small_dims(),
        (rows, cols, k) in small_array(),
        seed in 0u64..1_000_000,
    ) {
        let mut rng = SplitMix64::new(seed);
        let a = Matrix::random(t, n, &mut rng, -64, 63);
        let b = Matrix::random(n, m, &mut rng, -64, 63);
        let config = ArrayConfig::new(rows, cols).with_collapse_depth(k);
        let simulator = Simulator::new(config).unwrap();
        let run = simulator.run_gemm(&a, &b).unwrap();
        prop_assert_eq!(&run.output, &multiply(&a, &b).unwrap());

        let dims = GemmDims::new(m as u64, n as u64, t as u64);
        let tiles = dims.n.div_ceil(u64::from(rows)) * dims.m.div_ceil(u64::from(cols));
        prop_assert_eq!(run.stats.total_cycles(), config.tile_latency(t as u64) * tiles);
        // Every PE of every tile sees each of the T streamed rows exactly once.
        prop_assert_eq!(
            run.stats.macs,
            t as u64 * u64::from(rows) * u64::from(cols) * tiles
        );
    }

    /// Tiled multiplication over any array size equals the direct product.
    #[test]
    fn tiling_is_exact(
        (t, n, m) in small_dims(),
        rows in 1u32..=16,
        cols in 1u32..=16,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = SplitMix64::new(seed);
        let a = Matrix::random(t, n, &mut rng, -128, 127);
        let b = Matrix::random(n, m, &mut rng, -128, 127);
        prop_assert_eq!(tiled_multiply(&a, &b, rows, cols).unwrap(), multiply(&a, &b).unwrap());
    }

    /// The analytical model's absolute execution time always improves (or
    /// ties) when the optimizer's chosen depth is used instead of any other
    /// supported depth, and collapsing never increases the cycle count.
    #[test]
    fn optimizer_choice_dominates_and_cycles_shrink_with_k(
        m in 1u64..=2048,
        n in 1u64..=4096,
        t in 1u64..=4096,
    ) {
        let model = ArrayFlexModel::new(128, 128).unwrap();
        let dims = GemmDims::new(m, n, t);
        let choice = model.optimal_depth(dims).unwrap();
        let mut cycles_prev = None;
        for k in [1u32, 2, 4] {
            let execution = model.execute_arrayflex(dims, k).unwrap();
            prop_assert!(choice.execution.time <= execution.time);
            if let Some(prev) = cycles_prev {
                prop_assert!(execution.cycles <= prev);
            }
            cycles_prev = Some(execution.cycles);
        }
        // The conventional array is never slower in cycles than ArrayFlex at
        // k = 1 (identical cycle counts), and the continuous estimate is
        // positive and finite.
        let conventional = model.execute_conventional(dims).unwrap();
        prop_assert_eq!(conventional.cycles, model.execute_arrayflex(dims, 1).unwrap().cycles);
        prop_assert!(choice.continuous_estimate.is_finite());
        prop_assert!(choice.continuous_estimate > 0.0);
    }

    /// Parallel `EvaluationSweep::run` is element-for-element identical to
    /// the serial run on randomized networks, array sizes, mappings and
    /// thread counts — the determinism contract of the execution engine.
    #[test]
    fn parallel_sweep_equals_serial_elementwise(
        depth in 1u32..=4,
        base_channels in 3usize..=24,
        input_size in 8usize..=40,
        sizes in prop::collection::vec(
            (0usize..4).prop_map(|i| [32u32, 64, 128, 192][i]),
            1..=3,
        ),
        per_group in any::<bool>(),
        threads in 2usize..=8,
    ) {
        let network = synthetic_cnn(depth, base_channels, input_size);
        let mapping = if per_group {
            DepthwiseMapping::PerGroup
        } else {
            DepthwiseMapping::BlockDiagonal
        };
        let sweep = EvaluationSweep {
            array_sizes: sizes,
            dataflows: vec![Dataflow::WeightStationary],
            mapping,
            threads: 1,
        };
        let networks = vec![network];
        let serial = sweep.run(&networks).unwrap();
        let parallel = sweep.clone().threads(threads).run(&networks).unwrap();
        prop_assert_eq!(parallel.len(), serial.len());
        for (p, s) in parallel.iter().zip(&serial) {
            prop_assert_eq!(p, s);
        }
        // A caller-supplied executor behaves the same way.
        let pooled = sweep.run_with(&networks, &ParallelExecutor::new(threads)).unwrap();
        prop_assert_eq!(pooled, serial);
    }

    /// Tile-parallel cycle-accurate simulation is bit-identical to serial
    /// simulation for any geometry, mode and thread count.
    #[test]
    fn tile_parallel_simulation_equals_serial(
        (t, n, m) in small_dims(),
        (rows, cols, k) in small_array(),
        threads in 2usize..=8,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = SplitMix64::new(seed);
        let a = Matrix::random(t, n, &mut rng, -64, 63);
        let b = Matrix::random(n, m, &mut rng, -64, 63);
        let config = ArrayConfig::new(rows, cols).with_collapse_depth(k);
        let serial = Simulator::new(config).unwrap();
        let parallel = serial.threads(threads);
        let s = serial.run_gemm(&a, &b).unwrap();
        let p = parallel.run_gemm(&a, &b).unwrap();
        prop_assert_eq!(p, s);
    }

    /// Energy accounting is internally consistent: energy equals power times
    /// time for every mode, and deeper collapsing always reduces the energy
    /// of a fixed GEMM (lower frequency and more clock gating).
    #[test]
    fn energy_accounting_is_consistent(
        m in 64u64..=1024,
        n in 64u64..=4096,
        t in 1u64..=1024,
    ) {
        let model = ArrayFlexModel::new(128, 128).unwrap();
        let dims = GemmDims::new(m, n, t);
        let mut previous_energy = None;
        for k in [1u32, 2, 4] {
            let execution = model.execute_arrayflex(dims, k).unwrap();
            let expected = execution.power.energy_over(execution.time);
            prop_assert!((execution.energy.value() - expected.value()).abs() < 1e-9);
            if let Some(prev) = previous_energy {
                prop_assert!(execution.energy.value() <= prev);
            }
            previous_energy = Some(execution.energy.value());
        }
    }
}
