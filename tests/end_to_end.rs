//! Cross-crate integration tests: from CNN layer tables through the
//! analytical models down to the cycle-accurate simulator.

use arrayflex::{compare_network, ArrayFlexModel};
use cnn::models::{convnext_tiny, mobilenet_v1, resnet34, synthetic_cnn};
use cnn::DepthwiseMapping;
use gemm::im2col::{direct_convolution, im2col, weights_to_matrix, ConvWeights};
use gemm::rng::SplitMix64;
use gemm::{multiply, ConvShape, GemmDims, Matrix, Tensor3};
use hw_model::Design;
use sa_sim::{ArrayConfig, Simulator};

#[test]
fn a_real_convolution_runs_bit_exactly_on_the_simulated_array() {
    // conv 6 -> 10 channels, 3x3, on 9x9 activations, quantized operands.
    let shape = ConvShape::dense(6, 10, 3, 1, 1, 9);
    let mut rng = SplitMix64::new(99);
    let input = Tensor3::random(6, 9, 9, &mut rng, -100, 100);
    let weights = ConvWeights::random(shape, &mut rng, -100, 100);
    let a = im2col(&input, shape, 0).unwrap();
    let b = weights_to_matrix(&weights, 0).unwrap();
    let reference = direct_convolution(&input, &weights).unwrap().remove(0);

    for k in [1u32, 2, 4] {
        let simulator = Simulator::new(ArrayConfig::new(8, 8).with_collapse_depth(k)).unwrap();
        let run = simulator.run_gemm(&a, &b).unwrap();
        assert_eq!(run.output, reference, "k = {k}");
    }
}

#[test]
fn analytical_cycles_match_the_simulator_for_a_small_resnet_like_layer() {
    // A scaled-down late-network layer: N and M larger than the array so
    // tiling is exercised, T small so shallow pipelining pays off.
    let dims = GemmDims::new(24, 40, 6);
    let mut rng = SplitMix64::new(123);
    let a = Matrix::random(6, 40, &mut rng, -20, 20);
    let b = Matrix::random(40, 24, &mut rng, -20, 20);
    let model = ArrayFlexModel::new(16, 16).unwrap();
    for k in [1u32, 2, 4] {
        let result = model.simulate_gemm(&a, &b, k).unwrap();
        assert!(result.functionally_correct);
        assert_eq!(
            result.stats.total_cycles(),
            model.total_cycles(dims, k).unwrap(),
            "k = {k}"
        );
        assert!(result.cycles_match());
    }
}

#[test]
fn clock_gating_statistics_are_consistent_with_the_pipeline_mode() {
    let mut rng = SplitMix64::new(5);
    let a = Matrix::random(5, 16, &mut rng, -9, 9);
    let b = Matrix::random(16, 16, &mut rng, -9, 9);
    for (k, expected_fraction) in [(1u32, 0.0), (2, 0.5), (4, 0.75)] {
        let simulator = Simulator::new(ArrayConfig::new(16, 16).with_collapse_depth(k)).unwrap();
        let run = simulator.run_gemm(&a, &b).unwrap();
        assert!(
            (run.stats.clock_gating_fraction() - expected_fraction).abs() < 1e-9,
            "k = {k}"
        );
    }
}

#[test]
fn whole_network_planning_is_deterministic() {
    let model = ArrayFlexModel::new(128, 128).unwrap();
    let first = model
        .plan_arrayflex(&mobilenet_v1(), DepthwiseMapping::default())
        .unwrap();
    let second = model
        .plan_arrayflex(&mobilenet_v1(), DepthwiseMapping::default())
        .unwrap();
    assert_eq!(first, second);
}

#[test]
fn every_paper_network_prefers_arrayflex_overall_but_not_on_every_layer() {
    let model = ArrayFlexModel::new(128, 128).unwrap();
    for network in [resnet34(), mobilenet_v1(), convnext_tiny()] {
        let cmp = compare_network(&model, &network, DepthwiseMapping::default()).unwrap();
        assert!(cmp.time_saving() > 0.0, "{}", network.name());
        let savings = cmp.per_layer_time_saving();
        assert!(
            savings.iter().any(|(_, s)| *s < 0.0),
            "{}: the conventional SA should win the early, large-T layers",
            network.name()
        );
        assert!(
            savings.iter().any(|(_, s)| *s > 0.10),
            "{}: some layers should benefit substantially",
            network.name()
        );
    }
}

#[test]
fn synthetic_networks_flow_through_the_whole_stack() {
    let network = synthetic_cnn(4, 16, 64);
    let model = ArrayFlexModel::new(32, 32).unwrap();
    let cmp = compare_network(&model, &network, DepthwiseMapping::default()).unwrap();
    assert_eq!(cmp.conventional.layers.len(), network.len());
    assert!(cmp.conventional.total_time().value() > 0.0);
    assert!(cmp.arrayflex.total_time() <= cmp.conventional.total_time() * 1.2);
    // Later layers of the synthetic CNN shrink spatially, so at least one
    // layer should pick a shallow mode.
    assert!(cmp.arrayflex.shallow_layer_fraction() > 0.0);
}

#[test]
fn area_and_power_models_agree_on_the_relative_cost_of_configurability() {
    let model = ArrayFlexModel::new(64, 64).unwrap();
    let area = model.power_model().area_model();
    let overhead = area.overhead_fraction();
    assert!(overhead > 0.10 && overhead < 0.25);
    // Leakage inherits exactly the area overhead.
    let conv_leak = model
        .power_model()
        .array_leakage_power(Design::Conventional, 64, 64)
        .unwrap();
    let af_leak = model
        .power_model()
        .array_leakage_power(Design::ArrayFlex, 64, 64)
        .unwrap();
    assert!((af_leak.value() / conv_leak.value() - (1.0 + overhead)).abs() < 1e-9);
}

#[test]
fn fully_connected_layers_are_planned_like_single_row_gemms() {
    let model = ArrayFlexModel::new(128, 128).unwrap();
    let plan = model
        .plan_arrayflex(&resnet34(), DepthwiseMapping::default())
        .unwrap();
    let fc = plan.layer(34).unwrap();
    assert_eq!(fc.execution.dims, GemmDims::new(1000, 512, 1));
    // With T = 1 the reduction/broadcast latency dominates, so the deepest
    // mode is optimal for the classifier.
    assert_eq!(fc.execution.collapse_depth, 4);
}

#[test]
fn simulator_reference_and_tiled_reference_agree_with_each_other() {
    // Redundant triple-check across crates: direct GEMM, tiled GEMM and the
    // simulator all produce identical results.
    let mut rng = SplitMix64::new(77);
    let a = Matrix::random(9, 30, &mut rng, -40, 40);
    let b = Matrix::random(30, 21, &mut rng, -40, 40);
    let expected = multiply(&a, &b).unwrap();
    assert_eq!(gemm::tiled_multiply(&a, &b, 8, 8).unwrap(), expected);
    let simulator = Simulator::new(ArrayConfig::new(8, 8).with_collapse_depth(2)).unwrap();
    assert_eq!(simulator.run_gemm(&a, &b).unwrap().output, expected);
}
