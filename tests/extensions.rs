//! Integration tests of the extension features built on top of the paper's
//! core reproduction: memory-traffic accounting, execution tracing,
//! alternative optimization objectives and the extra workload tables.

use arrayflex::{ArrayFlexModel, Objective};
use cnn::models::{bert_base, resnet50, vgg16};
use cnn::DepthwiseMapping;
use gemm::rng::SplitMix64;
use gemm::{GemmDims, Matrix};
use sa_sim::{trace_tile, traffic_for_gemm, ArrayConfig, Simulator};

#[test]
fn traffic_is_mode_independent_but_latency_is_not() {
    let dims = GemmDims::new(96, 192, 49);
    let model = ArrayFlexModel::new(32, 32).unwrap();
    let normal_cfg = ArrayConfig::new(32, 32);
    let shallow_cfg = ArrayConfig::new(32, 32).with_collapse_depth(4);
    // Same words moved, fewer cycles: the bandwidth-neutrality claim of the
    // paper holds while latency still improves.
    assert_eq!(
        traffic_for_gemm(normal_cfg, dims).unwrap(),
        traffic_for_gemm(shallow_cfg, dims).unwrap()
    );
    assert!(model.total_cycles(dims, 4).unwrap() < model.total_cycles(dims, 1).unwrap());
}

#[test]
fn traced_tile_matches_untraced_execution_and_shows_the_wavefront() {
    let config = ArrayConfig::new(6, 6).with_collapse_depth(2);
    let mut rng = SplitMix64::new(3);
    let a = Matrix::random(4, 6, &mut rng, -7, 7);
    let b = Matrix::random(6, 6, &mut rng, -7, 7);
    let (output, stats, trace) = trace_tile(config, &a, &b).unwrap();
    let plain = Simulator::new(config).unwrap().run_tile(&a, &b).unwrap();
    assert_eq!(output, plain.output);
    assert_eq!(stats, plain.stats);
    // The wavefront needs ceil(R/k) - 1 = 2 cycles to reach the south edge.
    assert_eq!(trace.first_output_cycle(), Some(2));
    assert!(trace.render().contains("compute cycles"));
}

#[test]
fn objective_selection_trades_latency_for_energy_on_vgg16() {
    // VGG-16's huge-T layers want k = 1 for latency but k = 4 for energy,
    // so the two objectives must diverge measurably.
    let model = ArrayFlexModel::new(128, 128).unwrap();
    let net = vgg16();
    let by_latency = model
        .plan_arrayflex_with_objective(&net, DepthwiseMapping::default(), Objective::Latency)
        .unwrap();
    let by_energy = model
        .plan_arrayflex_with_objective(&net, DepthwiseMapping::default(), Objective::Energy)
        .unwrap();
    assert!(by_latency.total_time() < by_energy.total_time());
    assert!(by_energy.total_energy() < by_latency.total_energy());
    // Latency planning keeps the big early layers in normal mode.
    assert_eq!(by_latency.layer(1).unwrap().execution.collapse_depth, 1);
    assert_eq!(by_energy.layer(1).unwrap().execution.collapse_depth, 4);
}

#[test]
fn extra_workloads_plan_cleanly_on_both_designs() {
    let model = ArrayFlexModel::new(128, 128).unwrap();
    for network in [resnet50(), vgg16(), bert_base(128)] {
        let conventional = model
            .plan_conventional(&network, DepthwiseMapping::default())
            .unwrap();
        let arrayflex = model
            .plan_arrayflex(&network, DepthwiseMapping::default())
            .unwrap();
        assert_eq!(conventional.layers.len(), network.len());
        assert_eq!(arrayflex.layers.len(), network.len());
        assert!(arrayflex.total_time() <= conventional.total_time() * 1.12,
            "{}: per-layer optimum should never lose badly", network.name());
        assert!(arrayflex.total_cycles() <= conventional.total_cycles());
    }
}

#[test]
fn bert_attention_heads_execute_as_repeated_gemms() {
    let model = ArrayFlexModel::new(64, 64).unwrap();
    let plan = model
        .plan_arrayflex(&bert_base(64), DepthwiseMapping::default())
        .unwrap();
    let scores = plan.layer(2).unwrap();
    assert_eq!(scores.repeats, 12);
    assert_eq!(scores.execution.dims, GemmDims::new(64, 64, 64));
    // Layer totals multiply the per-invocation execution by the head count.
    assert!((scores.time().value() - scores.execution.time.value() * 12.0).abs() < 1e-9);
}
