//! Quickstart: compare ArrayFlex against a conventional fixed-pipeline
//! systolic array on a single CNN layer and on a whole network.
//!
//! Run with `cargo run --example quickstart`.

use arrayflex::{compare_network, ArrayFlexModel};
use cnn::models::resnet34;
use cnn::DepthwiseMapping;
use gemm::GemmDims;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 128x128-PE array with the paper's 28 nm calibration.
    let model = ArrayFlexModel::new(128, 128)?;

    // --- One layer: ResNet-34 layer 28, the Fig. 5(b) GEMM. -------------
    let dims = GemmDims::new(512, 2304, 49);
    let conventional = model.execute_conventional(dims)?;
    println!("conventional SA : {conventional}");
    for k in [1, 2, 4] {
        let execution = model.execute_arrayflex(dims, k)?;
        println!("arrayflex k = {k}: {execution}");
    }
    let best = model.optimal_depth(dims)?;
    println!(
        "optimal pipeline depth: k = {} (continuous estimate k_hat = {:.2})\n",
        best.collapse_depth, best.continuous_estimate
    );

    // --- A whole network: ResNet-34 single-batch inference. -------------
    let comparison = compare_network(&model, &resnet34(), DepthwiseMapping::default())?;
    println!("{comparison}");
    println!(
        "conventional: {:.1} us at {:.1} W",
        comparison.conventional.total_time().value(),
        comparison.conventional.average_power().value() / 1000.0
    );
    println!(
        "arrayflex   : {:.1} us at {:.1} W ({} of {} layers in shallow mode)",
        comparison.arrayflex.total_time().value(),
        comparison.arrayflex.average_power().value() / 1000.0,
        (comparison.arrayflex.shallow_layer_fraction() * comparison.arrayflex.layers.len() as f64)
            .round(),
        comparison.arrayflex.layers.len()
    );
    Ok(())
}
