//! Cycle-accurate simulation of a quantized convolution on the ArrayFlex
//! array: lower the convolution with im2col, stream it through the
//! register-level simulator in every pipeline mode, verify the outputs
//! against a direct convolution, and report cycle counts and clock-gating
//! statistics.
//!
//! Run with `cargo run --example cycle_accurate_sim`.

use gemm::im2col::{direct_convolution, im2col, weights_to_matrix, ConvWeights};
use gemm::rng::SplitMix64;
use gemm::{ConvShape, Tensor3};
use sa_sim::{ArrayConfig, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small quantized convolution: 8 -> 12 channels, 3x3 kernel, 10x10
    // activations. Small enough that every PE of a 16x16 array is simulated
    // every cycle in a fraction of a second.
    let shape = ConvShape::dense(8, 12, 3, 1, 1, 10);
    let mut rng = SplitMix64::new(42);
    let input = Tensor3::random(8, 10, 10, &mut rng, -64, 63);
    let weights = ConvWeights::random(shape, &mut rng, -64, 63);

    let a = im2col(&input, shape, 0)?;
    let b = weights_to_matrix(&weights, 0)?;
    let reference = &direct_convolution(&input, &weights)?[0];
    println!(
        "convolution lowered to GEMM {} (A is {}x{}, B is {}x{})\n",
        shape.gemm_dims(),
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );

    println!("  k   cycles   utilization   registers clock-gated   functional");
    for k in [1u32, 2, 4] {
        let simulator = Simulator::new(ArrayConfig::new(16, 16).with_collapse_depth(k))?;
        let run = simulator.run_gemm(&a, &b)?;
        let correct = run.output == *reference;
        println!(
            "  {}   {:>6}      {:>5.1}%             {:>5.1}%           {}",
            k,
            run.stats.total_cycles(),
            run.stats.utilization() * 100.0,
            run.stats.clock_gating_fraction() * 100.0,
            if correct { "exact match" } else { "MISMATCH" }
        );
        assert!(correct, "simulated convolution must match the reference");
    }
    println!("\nall pipeline modes produced bit-exact convolution results");
    Ok(())
}
