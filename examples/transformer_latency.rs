//! Beyond-the-paper workload: single-batch BERT-base encoder inference.
//!
//! Transformer inference at small batch sizes is exactly the latency-bound
//! regime the paper motivates ArrayFlex with. This example plans the
//! encoder stack at several sequence lengths and shows how the chosen
//! pipeline modes and the latency advantage shift with the sequence length.
//!
//! Run with `cargo run --example transformer_latency`.

use arrayflex::{compare_network, ArrayFlexModel};
use cnn::models::bert_base;
use cnn::DepthwiseMapping;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ArrayFlexModel::new(128, 128)?;
    println!("BERT-base encoder (12 layers, hidden 768), single batch, 128x128 PEs\n");
    println!("seq    conventional     arrayflex        saving   modes used");
    for seq in [32u64, 64, 128, 256, 512] {
        let network = bert_base(seq);
        let cmp = compare_network(&model, &network, DepthwiseMapping::default())?;
        let modes: Vec<String> = cmp
            .arrayflex
            .mode_breakdown()
            .iter()
            .map(|(k, share)| format!("k={k}:{}", share.layers))
            .collect();
        println!(
            "{:<6} {:>9.1} us   {:>9.1} us   {:>+6.1}%   {}",
            seq,
            cmp.conventional.total_time().value(),
            cmp.arrayflex.total_time().value(),
            cmp.time_saving() * 100.0,
            modes.join(" ")
        );
    }
    println!(
        "\nShort sequences favour deep pipeline collapsing; long sequences push the\n\
         optimal configuration back towards the conventional operating point,\n\
         exactly as Equation (7) predicts for a growing streaming dimension T."
    );
    Ok(())
}
