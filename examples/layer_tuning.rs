//! Tuning the pipeline depth for a custom convolution layer: lower the
//! layer to a GEMM, sweep every supported collapsing depth, and compare the
//! discrete optimum with the closed-form estimate of Equation (7).
//!
//! Run with `cargo run --example layer_tuning -- [out_channels] [in_channels] [kernel] [input_size]`
//! (defaults reproduce a late-network 3x3 convolution at 14x14).

use arrayflex::ArrayFlexModel;
use cnn::Layer;
use gemm::ConvShape;

fn arg(index: usize, default: usize) -> usize {
    std::env::args()
        .nth(index)
        .and_then(|a| a.parse().ok())
        .unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_channels = arg(1, 512);
    let in_channels = arg(2, 256);
    let kernel = arg(3, 3);
    let input_size = arg(4, 14);

    let shape = ConvShape::dense(in_channels, out_channels, kernel, 2, kernel / 2, input_size);
    let layer = Layer::conv(1, "custom", shape);
    let dims = layer.gemm_dims();
    println!(
        "convolution {in_channels} -> {out_channels}, {kernel}x{kernel}, input {input_size}x{input_size}"
    );
    println!("lowered GEMM dimensions: {dims}\n");

    for size in [128u32, 256] {
        let model = ArrayFlexModel::new(size, size)?;
        let conventional = model.execute_conventional(dims)?;
        println!("--- {size}x{size} PEs (conventional: {:.2} us) ---", conventional.time.value());
        println!("  k   cycles      f (GHz)   time (us)   vs conventional");
        for execution in model.depth_sweep(dims)? {
            println!(
                "  {}   {:>9}   {:>6.2}    {:>8.2}     {:>6.3}",
                execution.collapse_depth,
                execution.cycles,
                execution.frequency.value(),
                execution.time.value(),
                execution.time.value() / conventional.time.value()
            );
        }
        let choice = model.optimal_depth(dims)?;
        println!(
            "  best supported mode: k = {} ({:.2} us); Equation (7) estimate k_hat = {:.2}\n",
            choice.collapse_depth,
            choice.execution.time.value(),
            choice.continuous_estimate
        );
    }
    Ok(())
}
