//! Full single-batch inference study of ResNet-34: per-layer pipeline-mode
//! selection, execution time, power and energy on 128x128 and 256x256
//! arrays (the workload behind Figs. 8 and 9 of the paper).
//!
//! Run with `cargo run --example resnet34_inference`.

use arrayflex::{compare_network, ArrayFlexModel};
use cnn::models::resnet34;
use cnn::DepthwiseMapping;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = resnet34();
    println!(
        "{}: {} layers, {:.2} GMACs per inference\n",
        network.name(),
        network.len(),
        network.total_macs() as f64 / 1e9
    );

    for size in [128u32, 256] {
        let model = ArrayFlexModel::new(size, size)?;
        let cmp = compare_network(&model, &network, DepthwiseMapping::default())?;

        println!("=== {size}x{size} PEs ===");
        println!("{}", cmp);
        println!("per-mode breakdown of the ArrayFlex run:");
        for (k, share) in cmp.arrayflex.mode_breakdown() {
            println!(
                "  k = {k}: {:>2} layers, {:>8.1} us, {:>7.0} mW",
                share.layers,
                share.time.value(),
                share.average_power().value()
            );
        }

        // The five layers where ArrayFlex helps the most.
        let mut savings = cmp.per_layer_time_saving();
        savings.sort_by(|a, b| b.1.total_cmp(&a.1));
        println!("largest per-layer savings:");
        for (index, saving) in savings.iter().take(5) {
            let layer = cmp.arrayflex.layer(*index).expect("layer exists");
            println!(
                "  layer {:>2} ({:<12}) k = {}: {:+.1}%",
                index,
                layer.layer_name,
                layer.execution.collapse_depth,
                saving * 100.0
            );
        }
        println!();
    }
    Ok(())
}
