//! Round trip through the HTTP serving layer: spawn the planning service
//! in-process, request a plan over loopback, and verify the response is
//! byte-identical to calling the library directly.
//!
//! Run with: `cargo run --example serve_client`

use arrayflex_repro::prelude::*;
use arrayflex_repro::serve::client;
use arrayflex_repro::serve::http::{serve, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Spawn the service on an ephemeral loopback port.
    let handle = serve(ServerConfig::default())?;
    println!("serving on http://{}", handle.addr());

    // 2. Ask it to plan ResNet-34 on a 128x128 ArrayFlex array.
    let request = r#"{"network":"resnet34","rows":128,"cols":128}"#;
    let response = client::post_json(handle.addr(), "/v1/plan", request)?;
    println!("POST /v1/plan -> {} ({} bytes)", response.status, response.body.len());
    assert_eq!(response.status, 200);

    // 3. The response is byte-identical to the direct library call.
    let model = ArrayFlexModel::new(128, 128)?;
    let direct = model.plan_arrayflex(&models::resnet34(), DepthwiseMapping::default())?;
    let direct_json = serde_json::to_string(&direct)?;
    assert_eq!(response.body, direct_json.into_bytes());
    println!("response matches ArrayFlexModel::plan_arrayflex byte for byte");

    // 4. A repeated request is served from the plan cache (visible in the
    //    Prometheus metrics) with, again, identical bytes.
    let cached = client::post_json(handle.addr(), "/v1/plan", request)?;
    assert_eq!(cached.body, response.body);
    let metrics = client::get(handle.addr(), "/metrics")?;
    let hits_line = metrics
        .text()?
        .lines()
        .find(|l| l.starts_with("arrayflex_serve_plan_cache_hits_total"))
        .unwrap_or("")
        .to_owned();
    println!("{hits_line}");
    assert_eq!(hits_line, "arrayflex_serve_plan_cache_hits_total 1");

    // 5. Decode the plan from the wire and read a headline number back out.
    let plan: NetworkPlan = serde_json::from_str(std::str::from_utf8(&response.body)?)?;
    println!(
        "{}: {} layers, total time {}, average power {}",
        plan.network_name,
        plan.layers.len(),
        plan.total_time(),
        plan.average_power()
    );

    handle.shutdown();
    println!("server drained and shut down cleanly");
    Ok(())
}
