//! The parallel execution engine end to end: fan the DATE'23 evaluation
//! sweep out across every core, simulate a tiled GEMM with tile-level
//! parallelism, and verify that both are bit-identical to their serial
//! runs — the determinism contract documented in `DESIGN.md`.
//!
//! Run with `cargo run --release --example parallel_sweep`.

use arrayflex::{EvaluationSweep, ParallelExecutor};
use cnn::models::paper_evaluation_networks;
use gemm::rng::SplitMix64;
use gemm::Matrix;
use sa_sim::{ArrayConfig, Simulator};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    println!("detected {cores} hardware thread(s)\n");

    // --- 1. The evaluation sweep, serial vs. fanned out over all cores. ---
    let networks = paper_evaluation_networks();
    let serial_sweep = EvaluationSweep::date23();
    let parallel_sweep = EvaluationSweep::date23().threads(0);

    let start = Instant::now();
    let serial = serial_sweep.run(&networks)?;
    let serial_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let parallel = parallel_sweep.run(&networks)?;
    let parallel_ms = start.elapsed().as_secs_f64() * 1e3;

    assert_eq!(parallel, serial, "parallel sweep must match serial");
    println!(
        "evaluation sweep over {} (size, network) pairs:",
        serial.len()
    );
    println!("  serial          {serial_ms:8.3} ms");
    println!(
        "  {cores:2} thread(s)    {parallel_ms:8.3} ms  ({:.2}x, bit-identical)\n",
        serial_ms / parallel_ms
    );
    for comparison in &serial {
        println!("  {comparison}");
    }

    // --- 2. Tile-parallel cycle-accurate simulation. ---
    let mut rng = SplitMix64::new(7);
    let a = Matrix::random(16, 192, &mut rng, -40, 40);
    let b = Matrix::random(192, 96, &mut rng, -40, 40);
    let simulator = Simulator::new(ArrayConfig::new(32, 32).with_collapse_depth(2))?;

    let start = Instant::now();
    let serial_run = simulator.run_gemm(&a, &b)?;
    let serial_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let parallel_run = simulator.threads(0).run_gemm(&a, &b)?;
    let parallel_ms = start.elapsed().as_secs_f64() * 1e3;

    assert_eq!(parallel_run, serial_run, "tile-parallel must match serial");
    println!("\ncycle-accurate 192x96 GEMM on a 32x32 array (k=2):");
    println!("  serial tiles    {serial_ms:8.3} ms   {}", serial_run.stats);
    println!(
        "  {cores:2} thread(s)    {parallel_ms:8.3} ms  ({:.2}x, bit-identical)",
        serial_ms / parallel_ms
    );

    // --- 3. The engine itself, directly. ---
    let executor = ParallelExecutor::new(0);
    let cycle_counts = executor.try_run(vec![1u32, 2, 4], |k| {
        let sim = Simulator::new(ArrayConfig::new(32, 32).with_collapse_depth(k))?;
        Ok::<_, sa_sim::SimError>((k, sim.run_gemm(&a, &b)?.stats.total_cycles()))
    })?;
    println!("\nper-mode cycle counts (computed concurrently, reported in order):");
    for (k, cycles) in cycle_counts {
        println!("  k={k}: {cycles} cycles");
    }
    Ok(())
}
